package sm

import (
	"errors"
	"math/rand"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
)

// containmentKernel computes and stores a chain of values; the fault is
// aimed at arithmetic whose result later reaches global memory.
func containmentKernel() *isa.Kernel {
	a := compiler.NewAsm("contain")
	const (
		rTid, rV, rW = isa.Reg(0), isa.Reg(1), isa.Reg(2)
	)
	a.S2R(rTid, isa.SRTid)
	a.IAddI(rV, rTid, 100)
	a.IMulI(rW, rV, 3)
	a.IAdd(rV, rW, rTid)
	a.Stg(rTid, 0, rV)
	a.Exit()
	return a.MustBuild(1, 32, 0)
}

// TestSwapECCErrorContainment is the Section VI recovery property: with
// HaltOnDUE (the hardware raising a precise exception at the register
// read), a pipeline error under Swap-ECC never leaks to global memory —
// the simulation stops before the dependent store and memory still holds
// its initial contents for the faulted lane.
func TestSwapECCErrorContainment(t *testing.T) {
	base := containmentKernel()
	k := compiler.MustApply(base, compiler.SwapECC)
	rng := rand.New(rand.NewSource(9))
	contained, undetectedClean := 0, 0
	for trial := 0; trial < 60; trial++ {
		// Aim at a random original arithmetic instruction.
		var candidates []int64
		for pc, in := range k.Code {
			if in.Op.DupEligible() && in.Flags&isa.FlagShadow == 0 && in.WritesReg() {
				candidates = append(candidates, int64(pc))
			}
		}
		target := candidates[rng.Intn(len(candidates))]
		lane := rng.Intn(32)
		cfg := DefaultConfig()
		cfg.ECC = true
		cfg.HaltOnDUE = true
		g := NewGPU(cfg, 64)
		sentinel := uint32(0xDEAD0000 + uint32(lane))
		for i := 0; i < 32; i++ {
			g.Mem[i] = sentinel
		}
		g.Fault = &FaultPlan{TargetDynInstr: target, Lane: lane, BitMask: 1 << uint(rng.Intn(32))}
		_, err := g.Launch(k)
		var due *DUEError
		switch {
		case errors.As(err, &due):
			// Halted at the read: the faulted lane's slot must be untouched.
			if g.Mem[lane] != sentinel {
				t.Fatalf("trial %d: corrupted value leaked to memory before the DUE", trial)
			}
			contained++
		case err == nil:
			// The fault must not have corrupted the output (e.g. it landed
			// on a MOV-propagated path that still decoded clean, or the
			// flipped bit reconverged). Verify output correctness.
			want := uint32(lane+100)*3 + uint32(lane)
			if g.Fault.Applied && g.Mem[lane] != want && g.Mem[lane] != sentinel {
				t.Fatalf("trial %d: SDC under Swap-ECC: mem=%#x want %#x", trial, g.Mem[lane], want)
			}
			undetectedClean++
		default:
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
	}
	if contained == 0 {
		t.Fatal("no trial exercised containment")
	}
	t.Logf("contained=%d benign=%d", contained, undetectedClean)
}

// TestHaltOnDUEErrorType checks the precise-exception plumbing.
func TestHaltOnDUEErrorType(t *testing.T) {
	base := containmentKernel()
	k := compiler.MustApply(base, compiler.SwapECC)
	cfg := DefaultConfig()
	cfg.ECC = true
	cfg.HaltOnDUE = true
	g := NewGPU(cfg, 64)
	g.Fault = &FaultPlan{TargetDynInstr: 1, Lane: 2, BitMask: 4} // the IADDI
	_, err := g.Launch(k)
	var due *DUEError
	if !errors.As(err, &due) {
		t.Fatalf("want DUEError, got %v", err)
	}
	if due.Lane != 2 || due.Error() == "" {
		t.Errorf("DUE details: %+v", due)
	}
}

// TestStorageScrubUnderLoad: a storage error injected mid-run is corrected
// transparently and counted, with the program output intact.
func TestStorageScrubUnderLoad(t *testing.T) {
	base := containmentKernel()
	k := compiler.MustApply(base, compiler.SwapECC)
	cfg := DefaultConfig()
	cfg.ECC = true
	g := NewGPU(cfg, 64)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.PipelineDUEs != 0 || st.StorageCorrections != 0 {
		t.Fatalf("clean run not clean: %d/%d", st.PipelineDUEs, st.StorageCorrections)
	}
	for i := 0; i < 32; i++ {
		want := uint32(i+100)*3 + uint32(i)
		if g.Mem[i] != want {
			t.Fatalf("mem[%d] = %#x want %#x", i, g.Mem[i], want)
		}
	}
}

// TestCheckpointRestartRecovery runs the full Section VI recovery story:
// snapshot memory, hit a pipeline error that Swap-ECC contains (precise
// DUE, nothing leaked), restore the checkpoint, re-execute without the
// transient, and obtain the correct result.
func TestCheckpointRestartRecovery(t *testing.T) {
	base := containmentKernel()
	k := compiler.MustApply(base, compiler.SwapECC)
	cfg := DefaultConfig()
	cfg.ECC = true
	cfg.HaltOnDUE = true
	g := NewGPU(cfg, 64)
	for i := 0; i < 32; i++ {
		g.Mem[i] = 0xCCCC0000 | uint32(i)
	}
	snap := g.Snapshot()

	g.Fault = &FaultPlan{TargetDynInstr: 2, Lane: 7, BitMask: 1 << 5} // the IMULI
	_, err := g.Launch(k)
	var due *DUEError
	if !errors.As(err, &due) {
		t.Fatalf("expected a contained DUE, got %v", err)
	}

	// Recovery: roll back and re-run (the transient is gone).
	g.Restore(snap)
	g.Fault = nil
	if _, err := g.Launch(k); err != nil {
		t.Fatalf("re-execution failed: %v", err)
	}
	for i := 0; i < 32; i++ {
		want := uint32(i+100)*3 + uint32(i)
		if g.Mem[i] != want {
			t.Fatalf("post-recovery mem[%d] = %#x, want %#x", i, g.Mem[i], want)
		}
	}
}
