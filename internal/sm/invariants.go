package sm

// Dynamic self-checks on the simulator's own bookkeeping, enabled by
// Config.Verify. The timing model's credibility rests on a handful of
// conservation laws — the CPI stack partitions the cycle count exactly,
// retiring warps leave no divergence or barrier state behind, and residency
// never exceeds what the occupancy calculation admitted. Accel-Sim's
// modeling-accuracy follow-ups (arXiv:2401.10082) showed such invariants
// silently drift as simulators grow; here every perf PR runs them in CI via
// internal/verify.

import (
	"fmt"
	"strings"

	"swapcodes/internal/isa"
)

// InvariantError reports dynamic SM invariant violations detected during a
// Launch with Config.Verify enabled. The launch itself ran to completion;
// the violations indict the simulator's bookkeeping, not the kernel.
type InvariantError struct {
	Kernel     string
	Violations []string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sm: kernel %s: %d invariant violation(s): %s",
		e.Kernel, len(e.Violations), strings.Join(e.Violations, "; "))
}

func (m *machine) violatef(format string, args ...any) {
	// Bound the report: a broken conservation law tends to fire per warp or
	// per round, and the first few instances carry all the signal.
	if len(m.violations) < 32 {
		m.violations = append(m.violations, fmt.Sprintf(format, args...))
	}
}

// maxLatency is the largest producer latency any scoreboard entry can carry.
func (c *Config) maxLatency() int64 {
	max := int64(1)
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		if l := c.latency(cl); l > max {
			max = l
		}
	}
	return max
}

// checkResidency asserts, after CTA launch, that residency stayed within
// every bound the occupancy calculation promised: CTA slots, warp slots,
// register-file words, and shared-memory words.
func (m *machine) checkResidency() {
	cfg := m.cfg
	if len(m.resident) > m.residentLimit {
		m.violatef("cycle %d: %d resident CTAs exceed occupancy limit %d",
			m.cycle, len(m.resident), m.residentLimit)
	}
	if len(m.resident) > cfg.MaxCTAs {
		m.violatef("cycle %d: %d resident CTAs exceed MaxCTAs %d",
			m.cycle, len(m.resident), cfg.MaxCTAs)
	}
	if n := len(m.warps); n > cfg.MaxWarps {
		m.violatef("cycle %d: %d resident warps exceed MaxWarps %d", m.cycle, n, cfg.MaxWarps)
	}
	regsPerThread := m.k.NumRegs
	if g := cfg.RegAllocGranule; g > 1 {
		regsPerThread = (regsPerThread + g - 1) / g * g
	}
	if used := len(m.resident) * regsPerThread * m.warpsPerCTA * isa.WarpSize; used > cfg.RegFileWords {
		m.violatef("cycle %d: resident CTAs hold %d register words, file has %d",
			m.cycle, used, cfg.RegFileWords)
	}
	if used := len(m.resident) * m.k.SharedWords; used > cfg.SharedWords {
		m.violatef("cycle %d: resident CTAs hold %d shared words, SM has %d",
			m.cycle, used, cfg.SharedWords)
	}
}

// checkWarpRetired asserts a retiring warp left no execution state behind:
// the divergence stack fully unwound at EXIT, no barrier membership remains,
// and no scoreboard entry promises a result beyond any real pipe's latency.
func (m *machine) checkWarpRetired(w *warpState) {
	if len(w.stack) != 0 {
		m.violatef("warp %d retired with %d live divergence-stack entries", w.gid, len(w.stack))
	}
	if w.atBarrier {
		m.violatef("warp %d retired while waiting at a barrier", w.gid)
	}
	horizon := m.cycle + m.cfg.maxLatency()
	for r, t := range w.regReady {
		if t > horizon {
			m.violatef("warp %d retired with scoreboard reg r%d ready at %d, beyond horizon %d",
				w.gid, r, t, horizon)
		}
	}
	for p, t := range w.predReady {
		if t > horizon {
			m.violatef("warp %d retired with scoreboard pred p%d ready at %d, beyond horizon %d",
				w.gid, p, t, horizon)
		}
	}
}

// checkLaunchEnd asserts the launch-wide conservation laws after the last
// warp retired and finalize() stamped the cycle count.
func (m *machine) checkLaunchEnd() {
	st := m.stats
	if got := st.IssueCycles + st.StallCycles(); got != st.Cycles {
		m.violatef("CPI stack does not partition the launch: issue %d + stalls %d = %d, cycles %d",
			st.IssueCycles, st.StallCycles(), got, st.Cycles)
	}
	var perClass, perCat int64
	for _, v := range st.PerClass {
		perClass += v
	}
	for _, v := range st.PerCat {
		perCat += v
	}
	if perClass != st.DynWarpInstrs || perCat != st.DynWarpInstrs {
		m.violatef("instruction accounting split: DynWarpInstrs %d, per-class sum %d, per-category sum %d",
			st.DynWarpInstrs, perClass, perCat)
	}
	if m.nextCTA != m.k.GridCTAs {
		m.violatef("launch ended with %d of %d CTAs dispatched", m.nextCTA, m.k.GridCTAs)
	}
	if len(m.warps) != 0 || len(m.resident) != 0 {
		m.violatef("launch ended with %d live warps and %d resident CTAs", len(m.warps), len(m.resident))
	}
	if st.MaxResidentWarps > st.ResidentWarpLimit {
		m.violatef("peak residency %d warps exceeded occupancy limit %d",
			st.MaxResidentWarps, st.ResidentWarpLimit)
	}
}

// invariantErr converts accumulated violations into the launch error.
func (m *machine) invariantErr() error {
	if len(m.violations) == 0 {
		return nil
	}
	return &InvariantError{Kernel: m.k.Name, Violations: m.violations}
}
