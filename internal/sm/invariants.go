package sm

// Dynamic self-checks on the simulator's own bookkeeping, enabled by
// Config.Verify. The timing model's credibility rests on a handful of
// conservation laws — the CPI stack partitions the cycle count exactly,
// retiring warps leave no divergence or barrier state behind, and residency
// never exceeds what the occupancy calculation admitted. Accel-Sim's
// modeling-accuracy follow-ups (arXiv:2401.10082) showed such invariants
// silently drift as simulators grow; here every perf PR runs them in CI via
// internal/verify.

import (
	"fmt"
	"strings"

	"swapcodes/internal/isa"
	"swapcodes/internal/obs/simprof"
)

// InvariantError reports dynamic SM invariant violations detected during a
// Launch with Config.Verify enabled. The launch itself ran to completion;
// the violations indict the simulator's bookkeeping, not the kernel.
type InvariantError struct {
	Kernel     string
	Violations []string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sm: kernel %s: %d invariant violation(s): %s",
		e.Kernel, len(e.Violations), strings.Join(e.Violations, "; "))
}

func (m *machine) violatef(format string, args ...any) {
	// Bound the report: a broken conservation law tends to fire per warp or
	// per round, and the first few instances carry all the signal.
	if len(m.violations) < 32 {
		m.violations = append(m.violations, fmt.Sprintf(format, args...))
	}
	// Pin the violation into the black box: every checker runs on the
	// barrier thread, so the merge ring is the right home.
	if m.frMerge != nil {
		m.frMerge.Add(simprof.Decision{Cycle: m.cycle, Warp: -1, PC: -1,
			Kind: simprof.KindViolate, Aux: int64(len(m.violations))})
	}
}

// maxLatency is the largest producer latency any scoreboard entry can carry
// on the flat-latency path (an armed memory hierarchy extends the horizon by
// its own latest promised fill — see checkWarpRetired).
func (c *Config) maxLatency() int64 {
	max := int64(1)
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		if l, _ := c.latency(cl); l > max {
			max = l
		}
	}
	return max
}

// checkResidency asserts, after CTA launch, that residency stayed within
// every bound the occupancy calculation promised: CTA slots, warp slots,
// register-file words, and shared-memory words.
func (m *machine) checkResidency() {
	cfg := m.cfg
	if len(m.resident) > m.residentLimit {
		m.violatef("cycle %d: %d resident CTAs exceed occupancy limit %d",
			m.cycle, len(m.resident), m.residentLimit)
	}
	if len(m.resident) > cfg.MaxCTAs {
		m.violatef("cycle %d: %d resident CTAs exceed MaxCTAs %d",
			m.cycle, len(m.resident), cfg.MaxCTAs)
	}
	if n := m.liveWarps; n > cfg.MaxWarps {
		m.violatef("cycle %d: %d resident warps exceed MaxWarps %d", m.cycle, n, cfg.MaxWarps)
	}
	regsPerThread := m.k.NumRegs
	if g := cfg.RegAllocGranule; g > 1 {
		regsPerThread = (regsPerThread + g - 1) / g * g
	}
	if used := len(m.resident) * regsPerThread * m.warpsPerCTA * isa.WarpSize; used > cfg.RegFileWords {
		m.violatef("cycle %d: resident CTAs hold %d register words, file has %d",
			m.cycle, used, cfg.RegFileWords)
	}
	if used := len(m.resident) * m.k.SharedWords; used > cfg.SharedWords {
		m.violatef("cycle %d: resident CTAs hold %d shared words, SM has %d",
			m.cycle, used, cfg.SharedWords)
	}
}

// checkWarpRetired asserts a retiring warp left no execution state behind:
// the divergence stack fully unwound at EXIT, no barrier membership remains,
// and no scoreboard entry promises a result beyond any real pipe's latency.
func (m *machine) checkWarpRetired(w *warpState) {
	if len(w.stack) != 0 {
		m.violatef("warp %d retired with %d live divergence-stack entries", w.gid, len(w.stack))
	}
	if w.atBarrier {
		m.violatef("warp %d retired while waiting at a barrier", w.gid)
	}
	horizon := m.cycle + m.cfg.maxLatency()
	if m.mh != nil {
		// Hierarchy loads can legitimately promise results far beyond any
		// pipe latency (queueing, MSHR waits); the hierarchy's latest
		// promised fill bounds them. A sentinel (memPending) past this
		// horizon means a load was never serviced.
		if h := m.mh.MaxFill(); h > horizon {
			horizon = h
		}
	}
	for r, t := range w.regReady {
		if t > horizon {
			m.violatef("warp %d retired with scoreboard reg r%d ready at %d, beyond horizon %d",
				w.gid, r, t, horizon)
		}
	}
	for p, t := range w.predReady {
		if t > horizon {
			m.violatef("warp %d retired with scoreboard pred p%d ready at %d, beyond horizon %d",
				w.gid, p, t, horizon)
		}
	}
}

// checkLaunchEnd asserts the launch-wide conservation laws after the last
// warp retired and finalize() stamped the cycle count.
func (m *machine) checkLaunchEnd() {
	st := m.stats
	if got := st.IssueCycles + st.StallCycles(); got != st.Cycles {
		m.violatef("CPI stack does not partition the launch: issue %d + stalls %d = %d, cycles %d",
			st.IssueCycles, st.StallCycles(), got, st.Cycles)
	}
	var perClass, perCat int64
	for _, v := range st.PerClass {
		perClass += v
	}
	for _, v := range st.PerCat {
		perCat += v
	}
	if perClass != st.DynWarpInstrs || perCat != st.DynWarpInstrs {
		m.violatef("instruction accounting split: DynWarpInstrs %d, per-class sum %d, per-category sum %d",
			st.DynWarpInstrs, perClass, perCat)
	}
	if m.nextCTA != m.k.GridCTAs {
		m.violatef("launch ended with %d of %d CTAs dispatched", m.nextCTA, m.k.GridCTAs)
	}
	if m.liveWarps != 0 || len(m.resident) != 0 {
		m.violatef("launch ended with %d live warps and %d resident CTAs", m.liveWarps, len(m.resident))
	}
	if st.MaxResidentWarps > st.ResidentWarpLimit {
		m.violatef("peak residency %d warps exceeded occupancy limit %d",
			st.MaxResidentWarps, st.ResidentWarpLimit)
	}
	if st.UnknownClassOps > 0 {
		m.violatef("%d timing lookups fell back to the unknown-class default (misclassified instruction?)",
			st.UnknownClassOps)
	}
	if m.mh == nil && st.MemStallCycles() != 0 {
		m.violatef("flat-latency launch charged %d memory-hierarchy stall cycles", st.MemStallCycles())
	}
	// Per-slot stall counters must reconcile with the cycle partition: every
	// fully-idle round charged to reason X had its selected partition record
	// X in its own slot counter, and had EVERY partition bump exactly one
	// slot counter. (Equality is not expected — a partition can stall in a
	// round where another one issued, which charges IssueCycles.)
	perReason := [...]struct {
		name  string
		slots int64
		r     stallReason
	}{
		{"deps", st.StallDeps, stallDeps},
		{"throttle", st.StallThrottle, stallThrottle},
		{"barrier", st.StallBarrier, stallBarrier},
		{"nowarp", st.StallNoWarp, stallNoWarp},
	}
	var slotSum, idleSum int64
	for _, pr := range perReason {
		if pr.slots < m.idleRounds[pr.r] {
			m.violatef("stall accounting: %d %s slot stalls cannot cover %d fully-idle %s rounds",
				pr.slots, pr.name, m.idleRounds[pr.r], pr.name)
		}
		slotSum += pr.slots
		idleSum += m.idleRounds[pr.r]
	}
	if n := int64(len(m.parts)); n > 0 && slotSum < n*idleSum {
		m.violatef("stall accounting: %d slot stalls across %d schedulers cannot cover %d fully-idle rounds",
			slotSum, n, idleSum)
	}
}

// checkIdleRound audits one fully-idle round before it is charged: a full
// scoreboard rescan of every partition (bypassing the wake cache) must agree
// that no warp can issue, must reproduce each partition's recorded earliest
// wake, and the charged reason must be the one mergeRound's selection rule
// derives from the recorded profiles. This is the dynamic check that the
// wake cache and the batch idle-skip never hide a runnable warp or charge
// the wrong component.
func (m *machine) checkIdleRound(charged stallReason) {
	gmin := farFuture
	for _, p := range m.parts {
		if p.issued != 0 {
			m.violatef("cycle %d: round charged as idle (%d) but partition %d issued %d instructions",
				m.cycle, charged, p.idx, p.issued)
			continue
		}
		minWake := farFuture
		eligible := 0
		reasonSeen := false
		for _, w := range p.warps {
			if w.done || w.atomHold {
				continue
			}
			eligible++
			ready, wake, r, _, _ := p.warpReadyFull(w)
			if ready {
				m.violatef("cycle %d: idle round but warp %d of partition %d can issue",
					m.cycle, w.gid, p.idx)
				continue
			}
			if wake < minWake {
				minWake = wake
			}
			if wake == p.wake && r == p.reason {
				reasonSeen = true
			}
		}
		switch {
		case minWake != p.wake:
			m.violatef("cycle %d: partition %d recorded wake %d, full rescan derives %d",
				m.cycle, p.idx, p.wake, minWake)
		case eligible == 0:
			if p.reason != stallNoWarp {
				m.violatef("cycle %d: partition %d has no eligible warp but recorded stall reason %d",
					m.cycle, p.idx, p.reason)
			}
		case !reasonSeen:
			m.violatef("cycle %d: partition %d recorded reason %d, no warp at wake %d blocks on it",
				m.cycle, p.idx, p.reason, p.wake)
		}
		if p.wake < gmin {
			gmin = p.wake
		}
	}
	// mergeRound charges the reason of the lowest-index partition achieving
	// the earliest wake.
	for _, p := range m.parts {
		if p.wake == gmin {
			if p.reason != charged {
				m.violatef("cycle %d: idle round charged reason %d, nearest-to-ready partition %d blocks on %d",
					m.cycle, charged, p.idx, p.reason)
			}
			break
		}
	}
}

// invariantErr converts accumulated violations into the launch error.
func (m *machine) invariantErr() error {
	if len(m.violations) == 0 {
		return nil
	}
	return &InvariantError{Kernel: m.k.Name, Violations: m.violations}
}
