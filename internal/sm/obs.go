package sm

import (
	"fmt"

	"swapcodes/internal/isa"
	"swapcodes/internal/obs"
)

// smObs is the machine's observability state, allocated only when the GPU
// carries a recorder (GPU.Obs). Everything here is off the disabled hot
// path: a machine without a recorder holds a nil *smObs and the cycle loop
// pays a single nil-check branch per scheduler round (the guarantee
// BenchmarkSMObsDisabled guards).
//
// Registry instruments are labeled per kernel x scheme through obs.Name
// (DESIGN.md section 8): sm.cycles{kernel,scheme},
// sm.stall_cycles{kernel,scheme,reason}, ... so repeated launches of the
// same (kernel, scheme) pair accumulate into one series while different
// schemes never alias. Aggregate views sum the family
// (Registry.SumCounters).
type smObs struct {
	rec *obs.Recorder
	pid int64
	// kernel/scheme are the label values every instrument of this launch
	// carries.
	kernel, scheme string
	// period is the sampling window in cycles; counter samples (occupancy,
	// issue-slot usage, stall attribution) are emitted once per window.
	period   int64
	winStart int64
	// Window accumulators, reset at every sample.
	winIssued int64
	winStall  [4]int64 // indexed stallReason-1: deps, throttle, barrier, nowarp

	scoreWait *obs.Histogram
	detectLat *obs.Histogram
	cycles    *obs.Counter
	instrs    *obs.Counter
	warpsRun  *obs.Counter

	// Per-partition trace-thread state, active only when GPU.Prof is armed
	// alongside the recorder: one thread row per partition plus a merge row,
	// fed one span per sample window (see sampleParts).
	partsNamed                           bool
	prevIssued, prevIdle                 []int64
	prevRounds, prevIdleRounds, prevSkip int64
}

// Partition trace threads use high tids so they never collide with per-warp
// lifetime rows (tid = global warp id).
const (
	mergeTID    = int64(1)<<20 - 1
	partTIDBase = int64(1) << 20
)

func newSMObs(rec *obs.Recorder, k *isa.Kernel) *smObs {
	period := rec.SamplePeriod
	if period < 1 {
		period = obs.DefaultSamplePeriod
	}
	scheme := k.Scheme
	if scheme == "" {
		scheme = "none"
	}
	reg := rec.Registry()
	kv := []string{"kernel", k.Name, "scheme", scheme}
	return &smObs{
		rec:    rec,
		pid:    rec.UniqueProcess("sm:" + k.Name),
		kernel: k.Name,
		scheme: scheme,
		period: period,
		// Scoreboard waits are bounded by the global-memory latency tail
		// (~140 cycles by default); detection latency by kernel length.
		scoreWait: reg.Histogram(obs.Name("sm.scoreboard_wait_cycles", kv...), obs.ExpBounds(1, 12)...),
		detectLat: reg.Histogram(obs.Name("sm.detect_latency_cycles", kv...), obs.ExpBounds(1, 16)...),
		cycles:    reg.Counter(obs.Name("sm.cycles", kv...)),
		instrs:    reg.Counter(obs.Name("sm.warp_instrs", kv...)),
		warpsRun:  reg.Counter(obs.Name("sm.warps_retired", kv...)),
	}
}

// round folds one scheduler round into the window accumulators and emits
// the window's counter samples when the cycle crosses a period boundary.
// delta is the cycles the round advanced; reason attributes fully-idle
// rounds (issued == 0) to the blocking cause of the nearest-to-ready warp.
func (o *smObs) round(m *machine, issued int, delta int64, reason stallReason) {
	o.winIssued += int64(issued)
	if issued == 0 && reason != stallNone {
		o.winStall[reason-1] += delta
		if reason == stallDeps {
			o.scoreWait.Observe(delta)
		}
	}
	if m.cycle-o.winStart >= o.period {
		o.sample(m)
	}
}

// sample flushes the current window as counter events at the present cycle.
func (o *smObs) sample(m *machine) {
	win := m.cycle - o.winStart
	if win <= 0 {
		return
	}
	o.cycles.Add(win)
	o.instrs.Add(o.winIssued)
	slots := int64(m.cfg.Schedulers) * int64(max(m.cfg.IssuePerSched, 1)) * win
	o.rec.Sample(o.pid, "sm.occupancy", m.cycle, map[string]any{
		"warps": m.liveWarps, "ctas": len(m.resident)})
	o.rec.Sample(o.pid, "sm.issue_slots", m.cycle, map[string]any{
		"issued": o.winIssued, "total": slots})
	o.rec.Sample(o.pid, "sm.stall_cycles", m.cycle, map[string]any{
		"deps": o.winStall[0], "throttle": o.winStall[1],
		"barrier": o.winStall[2], "nowarp": o.winStall[3]})
	if m.prof != nil {
		o.sampleParts(m, o.winStart)
	}
	o.winStart = m.cycle
	o.winIssued = 0
	o.winStall = [4]int64{}
}

// sampleParts emits the window's per-partition activity as one span per
// partition trace thread, plus a merge-thread span carrying the barrier's
// round/idle-skip profile — in the Chrome viewer the merge row is exactly
// the serial residue between the partition rows' parallel work.
func (o *smObs) sampleParts(m *machine, winStart int64) {
	if !o.partsNamed {
		o.partsNamed = true
		o.rec.ThreadName(o.pid, mergeTID, "merge")
		for _, p := range m.parts {
			o.rec.ThreadName(o.pid, partTIDBase+int64(p.idx), fmt.Sprintf("partition %d", p.idx))
		}
		o.prevIssued = make([]int64, len(m.parts))
		o.prevIdle = make([]int64, len(m.parts))
	}
	dur := m.cycle - winStart
	for i, p := range m.parts {
		idle := p.stallDeps + p.stallThrottle + p.stallBarrier + p.stallNoWarp
		o.rec.Span(o.pid, partTIDBase+int64(i), "phase A", "simprof", winStart, dur,
			map[string]any{
				"issued":      p.instrs - o.prevIssued[i],
				"idle_rounds": idle - o.prevIdle[i],
				"warps":       len(p.warps),
			})
		o.prevIssued[i], o.prevIdle[i] = p.instrs, idle
	}
	lp := m.prof
	o.rec.Span(o.pid, mergeTID, "merge", "simprof", winStart, dur,
		map[string]any{
			"rounds":         lp.Rounds - o.prevRounds,
			"idle_rounds":    lp.IdleRounds - o.prevIdleRounds,
			"skipped_cycles": lp.SkippedCycles - o.prevSkip,
		})
	o.prevRounds, o.prevIdleRounds, o.prevSkip = lp.Rounds, lp.IdleRounds, lp.SkippedCycles
}

// warpDone emits the retiring warp's lifetime span: one row per warp
// (tid = global warp id), covering launch to retirement in cycles.
func (o *smObs) warpDone(m *machine, w *warpState) {
	o.warpsRun.Inc()
	o.rec.Span(o.pid, int64(w.gid), fmt.Sprintf("cta%d.w%d", w.cta.id, w.idInCTA),
		"warp", w.startCycle, m.cycle-w.startCycle, nil)
}

// due records one pipeline-DUE detection: the latency histogram measures
// cycles from fault write-back to the flagging register read (the paper's
// containment property — detection strictly precedes any dependent store).
func (o *smObs) due(m *machine, r isa.Reg, lane int) {
	if m.faultCycle >= 0 {
		o.detectLat.Observe(m.cycle - m.faultCycle)
	}
	o.rec.Instant(o.pid, 0, "pipeline DUE", "due", m.cycle,
		map[string]any{"reg": r.String(), "lane": lane})
}

// finish flushes the trailing partial window, the lifetime spans of
// still-resident warps, and the launch's CPI-stack counters — called on
// every run() exit path so cancelled launches leave a coherent partial
// trace and a complete-so-far cycle partition.
func (o *smObs) finish(m *machine) {
	o.sample(m)
	for _, p := range m.parts {
		for _, w := range p.warps {
			if !w.done {
				o.warpDone(m, w)
			}
		}
	}
	// CPI-stack counters land once per launch (cold path: Registry lookup
	// is fine here). The reason dimension uses the cpistack component
	// vocabulary so /metrics scrapes line up with the -exp cpistack tables.
	reg := o.rec.Registry()
	st := m.stats
	for reason, v := range map[string]int64{
		"deps": st.StallCyclesDeps, "throttle": st.StallCyclesThrottle,
		"barrier": st.StallCyclesBarrier, "nowarp": st.StallCyclesNoWarp,
		"occupancy": st.StallCyclesOccupancy,
		"mem.l1":    st.StallCyclesMemL1, "mem.l2": st.StallCyclesMemL2,
		"mem.dram": st.StallCyclesMemDRAM, "mem.mshr": st.StallCyclesMemMSHR,
	} {
		if v > 0 {
			reg.Counter(obs.Name("sm.stall_cycles",
				"kernel", o.kernel, "scheme", o.scheme, "reason", reason)).Add(v)
		}
	}
	if st.IssueCycles > 0 {
		reg.Counter(obs.Name("sm.issue_cycles",
			"kernel", o.kernel, "scheme", o.scheme)).Add(st.IssueCycles)
	}
	// Unknown-class fallbacks are a simulator-health signal, not a kernel
	// one: any nonzero count means some instruction's timing was a guess.
	if st.UnknownClassOps > 0 {
		reg.Counter(obs.Name("sm.unknown_class",
			"kernel", o.kernel, "scheme", o.scheme)).Add(st.UnknownClassOps)
	}
}
