package sm

import (
	"testing"

	"swapcodes/internal/obs"
	"swapcodes/internal/obs/simprof"
)

// benchLaunch runs one vecadd launch; rec == nil measures the disabled
// observability path.
func benchLaunch(b *testing.B, rec *obs.Recorder) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Obs = rec
		st, err := g.Launch(k)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Cycles), "cycles")
	}
}

// BenchmarkSMObsDisabled is the overhead guard of the observability layer:
// with a nil recorder the cycle loop must run within noise (<=2%) of the
// pre-instrumentation simulator, because the only added work is one
// predictable nil-check branch per scheduler round. Compare against
// BenchmarkSMObsEnabled to see the enabled-path cost.
func BenchmarkSMObsDisabled(b *testing.B) { benchLaunch(b, nil) }

// BenchmarkSMObsEnabled measures a fully traced launch (warp spans, window
// samples, histograms) for the DESIGN.md overhead model.
func BenchmarkSMObsEnabled(b *testing.B) { benchLaunch(b, obs.NewRecorder()) }

// BenchmarkSMCPIStack measures the always-on CPI-stack accounting: a launch
// plus building the attribution stack from its Stats. The per-round cost
// (per-class idle charges, issue-cycle partition) is included in every
// launch benchmark already; this pins the end-to-end number the benchdiff
// trajectory tracks so a future accounting change that bloats the cycle
// loop shows up as a regression here.
func BenchmarkSMCPIStack(b *testing.B) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		st, err := g.Launch(k)
		if err != nil {
			b.Fatal(err)
		}
		stack := st.CPIStack(k.Name, k.Scheme)
		if stack.Sum() != st.Cycles {
			b.Fatalf("stack sums to %d, want %d", stack.Sum(), st.Cycles)
		}
	}
}

// BenchmarkSMProfArmed measures a launch with the partition profiler
// (simprof.LaunchProf) armed: per-round counter folds, deferred-log peeks
// at the merge barrier, and two wall-clock reads per round. Compare against
// BenchmarkSMObsDisabled for the armed-profiler premium; the disabled cost
// is the same nil check that guards the recorder.
func BenchmarkSMProfArmed(b *testing.B) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Prof = &simprof.LaunchProf{}
		st, err := g.Launch(k)
		if err != nil {
			b.Fatal(err)
		}
		if g.Prof.Cycles != st.Cycles {
			b.Fatalf("prof cycles %d, stats %d", g.Prof.Cycles, st.Cycles)
		}
	}
}

// BenchmarkSMFlightArmed measures a launch with the flight recorder armed:
// one fixed-ring store per scheduler decision, no allocation, no I/O. This
// is the number that justifies leaving the black box on in servers.
func BenchmarkSMFlightArmed(b *testing.B) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Flight = simprof.NewFlightRecorder(0)
		if _, err := g.Launch(k); err != nil {
			b.Fatal(err)
		}
		if g.Flight.Failed() {
			b.Fatal("clean launch stamped failed")
		}
	}
}

// benchLaunchMem runs one vecadd launch under the given memory model; "off"
// measures the flat-latency path's nil-check overhead, "sectored" the armed
// hierarchy premium (coalescing, cache/MSHR/DRAM advance at the barrier).
func benchLaunchMem(b *testing.B, model string) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.MemModel = model
		g := NewGPU(cfg, 3*n+64)
		st, err := g.Launch(k)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Cycles), "cycles")
	}
}

// BenchmarkSMMemModelOff guards the flat path: with MemModel off the cycle
// loop's only added work is one nil check in exec and one at the merge
// barrier, so this must track BenchmarkSMObsDisabled within noise.
func BenchmarkSMMemModelOff(b *testing.B) { benchLaunchMem(b, "off") }

// BenchmarkSMMemModelArmed measures the armed hierarchy end to end —
// per-warp sector coalescing in exec, deferred request logs, and the
// deterministic cache/MSHR/DRAM advance in mergeRound.
func BenchmarkSMMemModelArmed(b *testing.B) { benchLaunchMem(b, "sectored") }
