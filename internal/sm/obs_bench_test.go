package sm

import (
	"testing"

	"swapcodes/internal/obs"
)

// benchLaunch runs one vecadd launch; rec == nil measures the disabled
// observability path.
func benchLaunch(b *testing.B, rec *obs.Recorder) {
	const n = 2048
	k := vecAddKernel(n, 16, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Obs = rec
		st, err := g.Launch(k)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Cycles), "cycles")
	}
}

// BenchmarkSMObsDisabled is the overhead guard of the observability layer:
// with a nil recorder the cycle loop must run within noise (<=2%) of the
// pre-instrumentation simulator, because the only added work is one
// predictable nil-check branch per scheduler round. Compare against
// BenchmarkSMObsEnabled to see the enabled-path cost.
func BenchmarkSMObsDisabled(b *testing.B) { benchLaunch(b, nil) }

// BenchmarkSMObsEnabled measures a fully traced launch (warp spans, window
// samples, histograms) for the DESIGN.md overhead model.
func BenchmarkSMObsEnabled(b *testing.B) { benchLaunch(b, obs.NewRecorder()) }
