package sm

import (
	"math"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
)

// vecAddKernel: c[i] = a[i] + b[i] (f32) for i < n, with a bounds guard.
// Memory layout: a at 0, b at n, c at 2n.
func vecAddKernel(n, grid, cta int) *isa.Kernel {
	a := compiler.NewAsm("vecadd")
	const (
		rTid, rCta, rNTid, rIdx, rA, rVa, rVb, rVc = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7)
	)
	a.S2R(rTid, isa.SRTid)
	a.S2R(rCta, isa.SRCtaid)
	a.S2R(rNTid, isa.SRNTid)
	a.IMad(rIdx, rCta, rNTid, rTid)
	a.ISetpI(isa.CmpGE, 0, rIdx, int32(n))
	a.BraP(0, false, "end", "end")
	a.Mov(rA, rIdx)
	a.Ldg(rVa, rA, 0)
	a.Ldg(rVb, rA, int32(n))
	a.FAdd(rVc, rVa, rVb)
	a.Stg(rA, int32(2*n), rVc)
	a.Label("end")
	a.Exit()
	return a.MustBuild(grid, cta, 0)
}

func runVecAdd(t *testing.T, k *isa.Kernel, n int) *GPU {
	t.Helper()
	g := NewGPU(DefaultConfig(), 3*n+64)
	for i := 0; i < n; i++ {
		g.SetFloat32(i, float32(i))
		g.SetFloat32(n+i, float32(2*i))
	}
	if _, err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVecAddFunctional(t *testing.T) {
	const n = 200
	k := vecAddKernel(n, 4, 64) // 256 threads > n: exercises the guard
	g := runVecAdd(t, k, n)
	for i := 0; i < n; i++ {
		if got := g.Float32(2*n + i); got != float32(3*i) {
			t.Fatalf("c[%d] = %v, want %v", i, got, float32(3*i))
		}
	}
}

// TestAllSchemesComputeSameResult is the master functional-equivalence
// property: every protection transformation must be semantics-preserving.
func TestAllSchemesComputeSameResult(t *testing.T) {
	const n = 200
	base := vecAddKernel(n, 4, 64)
	for _, s := range []compiler.Scheme{compiler.Baseline, compiler.SWDup,
		compiler.SwapECC, compiler.SwapPredictAddSub, compiler.SwapPredictMAD,
		compiler.SwapPredictOtherFxP, compiler.SwapPredictFpAddSub,
		compiler.SwapPredictFpMAD, compiler.InterThread, compiler.InterThreadNoCheck} {
		k, err := compiler.Apply(base, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		g := runVecAdd(t, k, n)
		for i := 0; i < n; i++ {
			if got := g.Float32(2*n + i); got != float32(3*i) {
				t.Fatalf("%v: c[%d] = %v, want %v", s, i, got, float32(3*i))
			}
		}
	}
}

// divergenceKernel: out[i] = i odd ? i*3 : i+100, via a divergent if/else.
func divergenceKernel(n int) *isa.Kernel {
	a := compiler.NewAsm("diverge")
	const (
		rTid, rBit, rVal = isa.Reg(0), isa.Reg(1), isa.Reg(2)
	)
	a.S2R(rTid, isa.SRTid)
	a.AndI(rBit, rTid, 1)
	a.ISetpI(isa.CmpNE, 0, rBit, 0)
	a.BraP(0, true, "else", "endif") // !odd -> else
	a.IMulI(rVal, rTid, 3)
	a.Bra("endif")
	a.Label("else")
	a.IAddI(rVal, rTid, 100)
	a.Label("endif")
	a.Stg(rTid, 0, rVal)
	a.Exit()
	return a.MustBuild(1, n, 0)
}

func TestDivergentIfElse(t *testing.T) {
	const n = 64
	g := NewGPU(DefaultConfig(), n)
	if _, err := g.Launch(divergenceKernel(n)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int32(i + 100)
		if i%2 == 1 {
			want = int32(i * 3)
		}
		if got := g.Int32(i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// loopKernel: out[tid] = sum_{j=0}^{tid} j, a loop with a divergent trip
// count per lane.
func loopKernel(n int) *isa.Kernel {
	a := compiler.NewAsm("loop")
	const (
		rTid, rJ, rAcc = isa.Reg(0), isa.Reg(1), isa.Reg(2)
	)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rJ, 0)
	a.MovI(rAcc, 0)
	a.Label("loop")
	a.IAdd(rAcc, rAcc, rJ)
	a.IAddI(rJ, rJ, 1)
	a.ISetp(isa.CmpLE, 0, rJ, rTid)
	a.BraP(0, false, "loop", "after")
	a.Label("after")
	a.Stg(rTid, 0, rAcc)
	a.Exit()
	return a.MustBuild(1, n, 0)
}

func TestDivergentLoopTripCounts(t *testing.T) {
	const n = 64
	g := NewGPU(DefaultConfig(), n)
	if _, err := g.Launch(loopKernel(n)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := int32(i * (i + 1) / 2)
		if got := g.Int32(i); got != want {
			t.Fatalf("out[%d] = %d, want %d", i, got, want)
		}
	}
}

// reductionKernel: shared-memory tree reduction with barriers; out[cta] =
// sum of in[cta*threads .. ).
func reductionKernel(grid, cta int) *isa.Kernel {
	a := compiler.NewAsm("reduce")
	const (
		rTid, rCta, rNTid, rIdx, rV, rS, rOther, rAddr = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4), isa.Reg(5), isa.Reg(6), isa.Reg(7)
	)
	a.S2R(rTid, isa.SRTid)
	a.S2R(rCta, isa.SRCtaid)
	a.S2R(rNTid, isa.SRNTid)
	a.IMad(rIdx, rCta, rNTid, rTid)
	a.Ldg(rV, rIdx, 0)
	a.Sts(rTid, 0, rV)
	a.Bar()
	for s := cta / 2; s > 0; s /= 2 {
		lbl := "skip" + string(rune('a'+s%26)) + string(rune('a'+(s/26)%26))
		a.ISetpI(isa.CmpGE, 0, rTid, int32(s))
		a.BraP(0, false, lbl, lbl)
		a.IAddI(rAddr, rTid, int32(s))
		a.Lds(rOther, rAddr, 0)
		a.Lds(rS, rTid, 0)
		a.IAdd(rS, rS, rOther)
		a.Sts(rTid, 0, rS)
		a.Label(lbl)
		a.Bar()
	}
	a.ISetpI(isa.CmpNE, 0, rTid, 0)
	a.BraP(0, false, "done", "done")
	a.Lds(rS, rTid, 0)
	a.Stg(rCta, 4096, rS)
	a.Label("done")
	a.Exit()
	return a.MustBuild(grid, cta, cta)
}

func TestBarrierReduction(t *testing.T) {
	const grid, cta = 4, 128
	g := NewGPU(DefaultConfig(), 8192)
	want := make([]int32, grid)
	for c := 0; c < grid; c++ {
		for i := 0; i < cta; i++ {
			v := int32(c*1000 + i)
			g.SetInt32(c*cta+i, v)
			want[c] += v
		}
	}
	if _, err := g.Launch(reductionKernel(grid, cta)); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < grid; c++ {
		if got := g.Int32(4096 + c); got != want[c] {
			t.Fatalf("cta %d sum = %d, want %d", c, got, want[c])
		}
	}
}

func TestAtomicsAndShuffle(t *testing.T) {
	a := compiler.NewAsm("atomics")
	const (
		rTid, rOne, rZero, rPartner = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
	)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rOne, 1)
	a.MovI(rZero, 0)
	a.Atom(isa.OpAdd, isa.RZ, rZero, rOne, 0) // mem[0] += 1 per thread
	a.Atom(isa.OpMax, isa.RZ, rZero, rTid, 1) // mem[1] = max tid
	a.Shfl(rPartner, rTid, 1)                 // partner lane's tid
	a.IAddI(rOne, rTid, 2)                    // reuse rOne as addr = tid+2
	a.Stg(rOne, 0, rPartner)
	a.Exit()
	g := NewGPU(DefaultConfig(), 128)
	if _, err := g.Launch(a.MustBuild(1, 64, 0)); err != nil {
		t.Fatal(err)
	}
	if got := g.Int32(0); got != 64 {
		t.Errorf("atomic add total %d, want 64", got)
	}
	if got := g.Int32(1); got != 63 {
		t.Errorf("atomic max %d, want 63", got)
	}
	for i := 0; i < 64; i++ {
		if got := g.Int32(i + 2); got != int32(i^1) {
			t.Fatalf("shuffle[%d] = %d, want %d", i, got, i^1)
		}
	}
}

func TestFP64Pairs(t *testing.T) {
	a := compiler.NewAsm("fp64")
	const (
		rTid, rAddr = isa.Reg(0), isa.Reg(1)
		rX          = isa.Reg(2) // pair 2,3
		rY          = isa.Reg(4) // pair 4,5
		rZ          = isa.Reg(6) // pair 6,7
	)
	a.S2R(rTid, isa.SRTid)
	a.ShlI(rAddr, rTid, 1)
	a.Ldg(rX, rAddr, 0)
	a.Ldg(rX+1, rAddr, 1)
	a.Ldg(rY, rAddr, 64)
	a.Ldg(rY+1, rAddr, 65)
	a.DMul(rZ, rX, rY)
	a.DFma(rZ, rX, rY, rZ) // z = x*y + x*y = 2xy -- accumulation via DFMA
	a.DAdd(rZ, rZ, rX)
	a.Stg(rAddr, 128, rZ)
	a.Stg(rAddr, 129, rZ+1)
	a.Exit()
	k := a.MustBuild(1, 32, 0)
	g := NewGPU(DefaultConfig(), 256)
	for i := 0; i < 32; i++ {
		g.SetFloat64(2*i, float64(i)+0.5)
		g.SetFloat64(64+2*i, 3.0)
	}
	if _, err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		x := float64(i) + 0.5
		want := 2*x*3 + x
		if got := g.Float64(128 + 2*i); math.Abs(got-want) > 1e-12 {
			t.Fatalf("z[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestMufuAndConversions(t *testing.T) {
	a := compiler.NewAsm("mufu")
	const (
		rTid, rF, rR, rS, rI = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	)
	a.S2R(rTid, isa.SRTid)
	a.IAddI(rTid, rTid, 1) // 1..32
	a.I2F(rF, rTid)
	a.Mufu(isa.FnRCP, rR, rF)  // 1/x
	a.Mufu(isa.FnSQRT, rS, rF) // sqrt(x)
	a.FMul(rR, rR, rF)         // x * 1/x = 1
	a.FAdd(rR, rR, rS)
	a.F2I(rI, rS)
	a.S2R(rF, isa.SRTid)
	a.Stg(rF, 0, rI)
	a.Exit()
	g := NewGPU(DefaultConfig(), 64)
	if _, err := g.Launch(a.MustBuild(1, 32, 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		want := int32(math.Sqrt(float64(i + 1)))
		if got := g.Int32(i); got != want {
			t.Fatalf("isqrt[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestOccupancyRegisterPressure(t *testing.T) {
	// 64 regs/thread, 256-thread CTAs: 65536/(64*256) = 4 CTAs resident;
	// at 16 regs: 16 CTAs, capped by warp slots 64/8 = 8.
	mk := func(regs int) *isa.Kernel {
		a := compiler.NewAsm("occ")
		a.MovI(isa.Reg(regs-1), 1)
		a.Exit()
		return a.MustBuild(32, 256, 0)
	}
	g := NewGPU(DefaultConfig(), 64)
	sFat, err := g.Launch(mk(64))
	if err != nil {
		t.Fatal(err)
	}
	sThin, err := g.Launch(mk(16))
	if err != nil {
		t.Fatal(err)
	}
	if sFat.MaxResidentWarps != 32 { // 4 CTAs * 8 warps
		t.Errorf("fat kernel resident warps %d, want 32", sFat.MaxResidentWarps)
	}
	if sThin.MaxResidentWarps != 64 {
		t.Errorf("thin kernel resident warps %d, want 64", sThin.MaxResidentWarps)
	}
}

func TestTimingSchemesOrdering(t *testing.T) {
	// A throughput-bound kernel with per-iteration stores (checking
	// pressure for SW-Dup) and independent accumulators (latency hidden):
	// baseline <= Swap-Predict <= Swap-ECC < SW-Dup in cycles.
	a := compiler.NewAsm("compute")
	const (
		rTid, rAcc, rAcc2, rI, rT = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rAcc, 1)
	a.MovI(rAcc2, 2)
	a.MovI(rI, 0)
	a.Label("loop")
	for j := 0; j < 4; j++ {
		a.IMad(rT, rAcc, rAcc2, rTid)
		a.IAdd(rAcc, rAcc2, rT)
		a.IMad(rAcc2, rT, rT, rI)
	}
	a.Stg(rTid, 0, rAcc)
	a.IAddI(rI, rI, 1)
	a.ISetpI(isa.CmpLT, 0, rI, 32)
	a.BraP(0, false, "loop", "after")
	a.Label("after")
	a.Exit()
	base := a.MustBuild(8, 128, 0)

	cycles := map[compiler.Scheme]int64{}
	g := NewGPU(DefaultConfig(), 2048)
	for _, s := range []compiler.Scheme{compiler.Baseline, compiler.SWDup, compiler.SwapECC, compiler.SwapPredictMAD} {
		st, err := g.RunScheme(base, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		cycles[s] = st.Cycles
	}
	if !(cycles[compiler.Baseline] <= cycles[compiler.SwapPredictMAD]) {
		t.Errorf("baseline %d !<= PreMAD %d", cycles[compiler.Baseline], cycles[compiler.SwapPredictMAD])
	}
	if !(cycles[compiler.SwapPredictMAD] <= cycles[compiler.SwapECC]) {
		t.Errorf("PreMAD %d !<= SwapECC %d", cycles[compiler.SwapPredictMAD], cycles[compiler.SwapECC])
	}
	if !(cycles[compiler.SwapECC] < cycles[compiler.SWDup]) {
		t.Errorf("SwapECC %d !< SWDup %d", cycles[compiler.SwapECC], cycles[compiler.SWDup])
	}
}

func TestStatsCategories(t *testing.T) {
	k := compiler.MustApply(vecAddKernel(100, 2, 64), compiler.SWDup)
	g := NewGPU(DefaultConfig(), 512)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.PerCat[isa.CatChecking] == 0 || st.PerCat[isa.CatDuplicated] == 0 {
		t.Errorf("categories: %v", st.PerCat)
	}
	if st.DynWarpInstrs == 0 || st.Cycles == 0 || st.IPC() <= 0 {
		t.Error("empty stats")
	}
}

// TestFaultDetectionSWDup: an injected pipeline error in a duplicated
// instruction fires the software checking trap.
func TestFaultDetectionSWDup(t *testing.T) {
	base := vecAddKernel(32, 1, 32) // single warp: dynamic index == static pc
	k := compiler.MustApply(base, compiler.SWDup)
	// Find the dynamic index of the first FADD (an original, checked op).
	idx := int64(-1)
	for pc, in := range k.Code {
		if in.Op == isa.FADD && in.Flags == 0 {
			// Dynamic index == static pc here: single warp, no loops before.
			idx = int64(pc)
			break
		}
	}
	if idx < 0 {
		t.Fatal("no FADD found")
	}
	g := NewGPU(DefaultConfig(), 512)
	for i := 0; i < 32; i++ {
		g.SetFloat32(i, float32(i))
		g.SetFloat32(32+i, float32(i))
	}
	g.Fault = &FaultPlan{TargetDynInstr: idx, Lane: 5, BitMask: 1 << 13}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Fault.Applied {
		t.Fatal("fault never fired")
	}
	if !st.Trapped {
		t.Error("SW-Dup failed to trap the injected error")
	}
}

// TestFaultDetectionSwapECC: the same error under Swap-ECC is caught by the
// register-file decoder as a pipeline DUE, with no checking instructions.
func TestFaultDetectionSwapECC(t *testing.T) {
	base := vecAddKernel(32, 1, 32) // single warp: dynamic index == static pc
	k := compiler.MustApply(base, compiler.SwapECC)
	idx := int64(-1)
	for pc, in := range k.Code {
		if in.Op == isa.FADD && in.Flags&isa.FlagShadow == 0 {
			idx = int64(pc)
			break
		}
	}
	if idx < 0 {
		t.Fatal("no FADD found")
	}
	cfg := DefaultConfig()
	cfg.ECC = true
	g := NewGPU(cfg, 512)
	for i := 0; i < 32; i++ {
		g.SetFloat32(i, float32(i))
		g.SetFloat32(32+i, float32(i))
	}
	g.Fault = &FaultPlan{TargetDynInstr: idx, Lane: 9, BitMask: 1 << 21}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Fault.Applied {
		t.Fatal("fault never fired")
	}
	if st.PipelineDUEs == 0 {
		t.Error("Swap-ECC register file missed the pipeline error")
	}
	if st.Trapped {
		t.Error("Swap-ECC should not use software traps")
	}
}

// TestFaultUndetectedOnBaseline: without protection the same fault corrupts
// the output silently (SDC).
func TestFaultUndetectedOnBaseline(t *testing.T) {
	k := vecAddKernel(32, 1, 32) // single warp
	idx := int64(-1)
	for pc, in := range k.Code {
		if in.Op == isa.FADD {
			idx = int64(pc)
			break
		}
	}
	g := NewGPU(DefaultConfig(), 512)
	for i := 0; i < 32; i++ {
		g.SetFloat32(i, float32(i))
		g.SetFloat32(32+i, float32(i))
	}
	g.Fault = &FaultPlan{TargetDynInstr: idx, Lane: 3, BitMask: 1 << 22}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trapped || st.PipelineDUEs > 0 {
		t.Error("baseline has no detection mechanism")
	}
	if g.Float32(64+3) == float32(2*3) {
		t.Error("fault did not corrupt the output — injection broken")
	}
}

func TestECCCleanRunNoFalsePositives(t *testing.T) {
	// Error-free Swap-ECC execution must never flag a DUE: the WAW swap
	// protocol leaves every register consistent.
	base := vecAddKernel(128, 2, 64)
	for _, s := range []compiler.Scheme{compiler.SwapECC, compiler.SwapPredictMAD, compiler.SwapPredictFpMAD} {
		k := compiler.MustApply(base, s)
		cfg := DefaultConfig()
		cfg.ECC = true
		g := NewGPU(cfg, 512)
		for i := 0; i < 128; i++ {
			g.SetFloat32(i, float32(i))
			g.SetFloat32(128+i, 1)
		}
		st, err := g.Launch(k)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if st.PipelineDUEs != 0 || st.StorageDUEs != 0 {
			t.Errorf("%v: false positives: %d pipeline, %d storage DUEs", s, st.PipelineDUEs, st.StorageDUEs)
		}
	}
}

func TestOversizedKernelFailsLaunch(t *testing.T) {
	a := compiler.NewAsm("huge")
	a.MovI(isa.Reg(250), 1)
	a.Exit()
	k := a.MustBuild(1, 1024, 0)
	g := NewGPU(DefaultConfig(), 16)
	if _, err := g.Launch(k); err == nil {
		t.Error("kernel with 251 regs x 1024 threads should not fit")
	}
}

func TestOutOfBoundsAccessReported(t *testing.T) {
	a := compiler.NewAsm("oob")
	const rAddr = isa.Reg(0)
	a.MovI(rAddr, 1<<20)
	a.Ldg(1, rAddr, 0)
	a.Exit()
	g := NewGPU(DefaultConfig(), 64)
	if _, err := g.Launch(a.MustBuild(1, 32, 0)); err == nil {
		t.Error("out-of-bounds load not reported")
	}
}

func TestBypassAblationSpeedsDependentChains(t *testing.T) {
	a := compiler.NewAsm("chain")
	const rAcc = isa.Reg(0)
	a.MovI(rAcc, 1)
	for i := 0; i < 200; i++ {
		a.IAddI(rAcc, rAcc, 1)
	}
	a.Stg(isa.RZ, 0, rAcc)
	a.Exit()
	k := a.MustBuild(1, 32, 0)
	g := NewGPU(DefaultConfig(), 16)
	noBypass, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.BypassSaving = 3
	g2 := NewGPU(cfg, 16)
	bypass, err := g2.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !(bypass.Cycles < noBypass.Cycles) {
		t.Errorf("bypass %d !< no-bypass %d", bypass.Cycles, noBypass.Cycles)
	}
	if g.Int32(0) != 201 || g2.Int32(0) != 201 {
		t.Error("chain result wrong")
	}
}

// TestIssueWidthDoesNotChangeResults: timing knobs (dual-issue width) must
// never alter functional output — only cycles.
func TestIssueWidthDoesNotChangeResults(t *testing.T) {
	k := vecAddKernel(200, 4, 64)
	const n = 200
	results := map[int][]uint32{}
	cyc := map[int]int64{}
	for _, width := range []int{1, 2} {
		cfg := DefaultConfig()
		cfg.IssuePerSched = width
		g := NewGPU(cfg, 3*n+64)
		for i := 0; i < n; i++ {
			g.SetFloat32(i, float32(i))
			g.SetFloat32(n+i, float32(2*i))
		}
		st, err := g.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]uint32, n)
		copy(out, g.Mem[2*n:3*n])
		results[width] = out
		cyc[width] = st.Cycles
	}
	for i := range results[1] {
		if results[1][i] != results[2][i] {
			t.Fatalf("output differs at %d between issue widths", i)
		}
	}
	if cyc[2] > cyc[1] {
		t.Errorf("dual issue slower: %d vs %d", cyc[2], cyc[1])
	}
}

// TestStallAttribution: a serial pointer-chase is dependency-stalled; a
// dense FP64 stream throttles on the FP64 pipe; a lone warp waiting at a
// two-warp barrier... is released (barrier stalls appear transiently).
func TestStallAttribution(t *testing.T) {
	// Dependency-bound: serial loads.
	a := compiler.NewAsm("chase")
	const rP = isa.Reg(0)
	a.S2R(rP, isa.SRTid)
	for i := 0; i < 8; i++ {
		a.Ldg(rP, rP, 0)
	}
	a.Stg(isa.RZ, 32, rP)
	a.Exit()
	g := NewGPU(DefaultConfig(), 64)
	st, err := g.Launch(a.MustBuild(1, 32, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st.StallDeps == 0 || st.StallDeps < st.StallThrottle {
		t.Errorf("pointer chase: deps=%d throttle=%d, want dep-dominated", st.StallDeps, st.StallThrottle)
	}

	// Throughput-bound: many warps of independent FP64 work.
	b := compiler.NewAsm("fp64burn")
	b.S2R(0, isa.SRTid)
	for i := 0; i < 16; i++ {
		b.DMul(isa.Reg(2+2*(i%4)), isa.Reg(2+2*(i%4)), isa.Reg(2+2*((i+1)%4)))
	}
	b.Exit()
	g2 := NewGPU(DefaultConfig(), 16)
	st2, err := g2.Launch(b.MustBuild(16, 128, 0))
	if err != nil {
		t.Fatal(err)
	}
	if st2.StallThrottle == 0 {
		t.Errorf("fp64 burn: no throttle stalls (deps=%d)", st2.StallDeps)
	}
}

// TestWideFaultHighWord covers BitMaskHi: a fault in the high half of a
// wide (64-bit) result corrupts only the odd register of the pair.
func TestWideFaultHighWord(t *testing.T) {
	a := compiler.NewAsm("widefault")
	const (
		rTid, rX, rY = isa.Reg(0), isa.Reg(1), isa.Reg(2)
		rC           = isa.Reg(4) // pair
		rZ           = isa.Reg(6) // pair
	)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rX, 3)
	a.MovI(rY, 5)
	a.MovI(rC, 0)
	a.MovI(rC+1, 0)
	a.IMadWide(rZ, rX, rY, rC)
	a.ShlI(rX, rTid, 1)
	a.Stg(rX, 0, rZ)
	a.Stg(rX, 1, rZ+1)
	a.Exit()
	k := a.MustBuild(1, 32, 0)
	g := NewGPU(DefaultConfig(), 128)
	g.Fault = &FaultPlan{TargetDynInstr: 5, Lane: 2, BitMaskHi: 1 << 9} // the IMAD.WIDE
	if _, err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	if !g.Fault.Applied {
		t.Fatal("fault not applied")
	}
	for i := 0; i < 32; i++ {
		lo, hi := g.Mem[2*i], g.Mem[2*i+1]
		wantLo, wantHi := uint32(15), uint32(0)
		if i == 2 {
			wantHi ^= 1 << 9
		}
		if lo != wantLo || hi != wantHi {
			t.Fatalf("lane %d: (%#x,%#x), want (%#x,%#x)", i, lo, hi, wantLo, wantHi)
		}
	}
}

// TestDeterministicReplay: two identical launches produce identical stats
// and memory — the property checkpoint/restart recovery relies on.
func TestDeterministicReplay(t *testing.T) {
	k := compiler.MustApply(vecAddKernel(200, 4, 64), compiler.SwapECC)
	run := func() (*Stats, []uint32) {
		g := NewGPU(DefaultConfig(), 664)
		for i := 0; i < 200; i++ {
			g.SetFloat32(i, float32(i))
			g.SetFloat32(200+i, 1)
		}
		st, err := g.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		m := make([]uint32, len(g.Mem))
		copy(m, g.Mem)
		return st, m
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1.Cycles != s2.Cycles || s1.DynWarpInstrs != s2.DynWarpInstrs {
		t.Fatalf("non-deterministic stats: %d/%d vs %d/%d", s1.Cycles, s1.DynWarpInstrs, s2.Cycles, s2.DynWarpInstrs)
	}
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatalf("non-deterministic memory at %d", i)
		}
	}
}
