package sm

import (
	"context"
	"fmt"
	"math"
	"time"

	"swapcodes/internal/core"
	"swapcodes/internal/isa"
	"swapcodes/internal/memmodel"
	"swapcodes/internal/obs/simprof"
)

// The SM advances in deterministic epochs ("rounds"), DESIGN.md §13. Every
// round has two phases:
//
//   - Phase A: each scheduler partition independently picks and issues up to
//     IssuePerSched instructions from the warps it owns. Partitions touch
//     only their own warps, token buckets, statistics deltas, and deferred
//     event logs (global- and shared-memory stores, atomics, barrier
//     arrivals, warp exits), plus read-only shared state (kernel, config,
//     the cycle number, and memory as committed at the last barrier), so
//     phase A can run partitions on goroutines with no synchronization.
//   - Barrier: a single-threaded merge in fixed partition order — commit
//     deferred stores and replay atomics, apply barrier arrivals and warp
//     exits and release satisfied CTA barriers, aggregate issue/stall
//     statistics, retire warps, pick the idle-skip delta, advance the
//     cycle, and poll cancellation.
//
// Because every cross-partition interaction is confined to the barrier and
// the barrier iterates partitions in index order, results are bit-identical
// at any worker count — the parallel path IS the serial path with phase A
// reordered, and phase A is order-free by construction.

// simtEntry is one level of the per-warp reconvergence stack.
type simtEntry struct {
	pc     int32
	mask   uint32
	reconv int32 // -1 for the base entry
}

type warpState struct {
	cta        *ctaState
	idInCTA    int
	gid        int   // global warp id (unique across the launch)
	startCycle int64 // cycle the warp became resident
	sched      int   // owning scheduler partition
	stack      []simtEntry
	regs       []uint32 // reg*32 + lane
	preds      [8]uint32
	regReady   []int64
	predReady  [8]int64
	// regClass/predClass remember the pipe class of the last producer of
	// each register/predicate, so dependence stalls can be attributed to
	// the pipe whose latency is being waited out (the CPI-stack per-class
	// breakdown).
	regClass  []uint8
	predClass [8]uint8
	rf        *core.RegFile
	atBarrier bool
	done      bool
	// atomHold parks the warp for the rest of the round after it issues an
	// ATOM: the atomic's read-modify-write and destination write-back happen
	// at the barrier replay, and holding the warp guarantees no younger
	// instruction of the same warp runs between them.
	atomHold bool
	// cacheWake memoizes the last full scoreboard scan (fast path only):
	// while cacheWake > cycle the warp provably cannot issue for the cached
	// reason, and the scan is skipped. Zero means "must recheck". Only
	// dependence and barrier stalls are cached — their wake times move only
	// when the warp itself issues or its barrier releases, which are exactly
	// the invalidation points.
	cacheWake   int64
	cacheReason stallReason
	cacheClass  uint8
	cacheMem    uint8
	// regMem, parallel to regClass, remembers which memory-hierarchy level
	// bounded the last hierarchy-load producer of each register
	// (memmodel.Level; 0 for every non-hierarchy producer), so dependence
	// stalls on load results can be charged to mem.l1/l2/dram/mshr. All
	// zero when Config.MemModel is off.
	regMem []uint8
}

func (w *warpState) top() *simtEntry { return &w.stack[len(w.stack)-1] }

type ctaState struct {
	id        int
	shared    []uint32
	warps     []*warpState
	liveWarps int
	arrived   int
}

type machine struct {
	g     *GPU
	cfg   *Config
	k     *isa.Kernel
	stats *Stats

	warpsPerCTA   int
	residentLimit int
	// occCapped records that registers or shared memory capped residency
	// below the SM's warp-slot limit — the precondition for charging idle
	// cycles to the CPI stack's occupancy component.
	occCapped bool
	nextCTA   int
	resident  []*ctaState

	parts     []*partition
	par       *parRunner // non-nil only when phase A runs on worker goroutines
	liveWarps int        // resident warps across all partitions
	// inOrder is true whenever phase A runs partitions sequentially on one
	// goroutine (the global dynamic-instruction counter is then exact).
	inOrder bool

	// mh is the armed memory hierarchy (nil when Config.MemModel is off).
	// Its state advances only inside serviceMem on the barrier thread, so
	// arming it does not pin phase A in-order.
	mh *memmodel.Hier
	// unknownClass counts barrier-thread timing lookups that hit the
	// unknown-class fallback (partitions count their own; finalize sums).
	unknownClass int64

	// prate/tokCap are the per-partition token-bucket parameters: each
	// partition gets 1/Schedulers of every pipe's issue bandwidth, so
	// aggregate throughput matches the whole-SM rate while keeping the
	// buckets partition-local.
	prate  [10]float64
	tokCap float64
	// platency mirrors prate for result latencies: the per-class table is
	// resolved through Config.latency once at launch, so the issue path is
	// an array load. Zero marks a class outside the vocabulary (valid
	// latencies are >= 1); latencyOf counts a hit on it as a fallback.
	platency [10]int64

	// ctaScratch is merge-phase scratch listing CTAs touched by this round's
	// deferred events, reused across rounds.
	ctaScratch []*ctaState

	cycle int64
	// dyn is the global dynamic warp-instruction counter driving fault
	// injection; it is maintained only in in-order mode (armed faults force
	// in-order execution, so the numbering is always exact when it matters).
	dyn int64
	// faultCycle is the cycle the armed FaultPlan fired at (-1 before),
	// the reference point for detection-latency measurement.
	faultCycle int64
	// obsm is non-nil only when GPU.Obs carries a recorder; the cycle loop
	// guards every observation behind this one nil check.
	obsm *smObs
	// prof mirrors GPU.Prof: per-partition parallelism telemetry. Every
	// hot-path observation hides behind this nil check (plus frMerge's for
	// the flight recorder), which is what keeps the disabled path inside the
	// BenchmarkSMObsDisabled budget. Unlike obsm, prof does not force
	// in-order execution: everything it touches during phase A is
	// partition-local, and the barrier-thread fields never feed back into
	// simulated state.
	prof *simprof.LaunchProf
	// flight/frMerge mirror GPU.Flight: frMerge is the barrier thread's
	// decision ring (partitions hold their own ring pointers).
	flight  *simprof.FlightRecorder
	frMerge *simprof.Ring
	// profA/profMerge accumulate phase-A and merge wall time (prof only).
	profA, profMerge time.Duration
	// violations accumulates dynamic invariant failures when Config.Verify
	// is set (see invariants.go).
	violations []string

	// Machine-wide statistic accumulators kept as arrays on the hot path;
	// finalize() converts them to the public Stats maps.
	depCyc [10]int64
	thrCyc [10]int64
	// idleRounds counts fully-idle rounds by proximate stall reason (before
	// any occupancy re-attribution) — the Verify-mode reconciliation between
	// the CPI cycle partition and the per-slot stall counters.
	idleRounds [5]int64
}

func newMachine(g *GPU, k *isa.Kernel) *machine {
	m := &machine{g: g, cfg: &g.Cfg, k: k, faultCycle: -1,
		stats: &Stats{PerClass: make(map[isa.Class]int64), PerCat: make(map[isa.Category]int64),
			DepCyclesPerClass:      make(map[isa.Class]int64),
			ThrottleCyclesPerClass: make(map[isa.Class]int64)}}
	m.warpsPerCTA = (k.CTAThreads + isa.WarpSize - 1) / isa.WarpSize
	if g.Obs != nil {
		m.obsm = newSMObs(g.Obs, k)
	}
	m.prof = g.Prof
	m.flight = g.Flight
	return m
}

// occupancy computes the resident CTA limit from warp slots, register file
// capacity, and shared memory — the mechanism through which duplication's
// register pressure costs parallelism.
func (m *machine) occupancy() (int, error) {
	cfg := m.cfg
	lim := cfg.MaxCTAs
	if byWarps := cfg.MaxWarps / m.warpsPerCTA; byWarps < lim {
		lim = byWarps
	}
	regsPerThread := m.k.NumRegs
	if g := cfg.RegAllocGranule; g > 1 {
		regsPerThread = (regsPerThread + g - 1) / g * g
	}
	regsPerCTA := regsPerThread * m.warpsPerCTA * isa.WarpSize
	if regsPerCTA > 0 {
		if byRegs := cfg.RegFileWords / regsPerCTA; byRegs < lim {
			lim = byRegs
		}
	}
	if m.k.SharedWords > 0 {
		if byShm := cfg.SharedWords / m.k.SharedWords; byShm < lim {
			lim = byShm
		}
	}
	if lim < 1 {
		return 0, fmt.Errorf("sm: kernel %s does not fit: %d regs/thread, %d shared words",
			m.k.Name, m.k.NumRegs, m.k.SharedWords)
	}
	return lim, nil
}

// initPartitions sets up one partition per scheduler and the per-partition
// token-bucket parameters.
func (m *machine) initPartitions() {
	n := m.cfg.Schedulers
	if n < 1 {
		n = 1
	}
	m.parts = make([]*partition, n)
	m.tokCap = 8 / float64(n)
	if m.tokCap < 1 {
		m.tokCap = 1
	}
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		r, ok := m.cfg.rate(cl)
		if !ok {
			m.unknownClass++
		}
		m.prate[cl] = r / float64(n)
		if l, ok := m.cfg.latency(cl); ok {
			m.platency[cl] = l
		}
	}
	for i := range m.parts {
		p := &partition{m: m, idx: i}
		for cl := range p.tokens {
			p.tokens[cl] = 1
		}
		m.parts[i] = p
	}
	if m.prof != nil {
		m.prof.Reset(n)
	}
	if m.flight != nil {
		m.frMerge = m.flight.MergeRing()
		for i, p := range m.parts {
			p.fr = m.flight.Partition(i)
		}
	}
}

// launchCTA makes one CTA resident, assigning each warp to the currently
// least-loaded partition (ties to the lowest index). Per-warp assignment
// keeps every scheduler fed even when occupancy admits few CTAs — a CTA's
// warps can span partitions, which is why barrier arrivals, exits, and
// shared-memory stores are deferred to the merge rather than applied during
// phase A.
func (m *machine) launchCTA() {
	cta := getCTA(m.nextCTA, m.k.SharedWords)
	m.nextCTA++
	for wi := 0; wi < m.warpsPerCTA; wi++ {
		p := m.parts[0]
		for _, q := range m.parts[1:] {
			if len(q.warps) < len(p.warps) {
				p = q
			}
		}
		w := getWarp(m.k.NumRegs)
		w.cta = cta
		w.idInCTA = wi
		w.gid = cta.id*m.warpsPerCTA + wi
		w.startCycle = m.cycle
		w.sched = p.idx
		w.stack = append(w.stack[:0], simtEntry{pc: 0, mask: m.warpMask(wi), reconv: -1})
		if m.cfg.ECC {
			w.rf = core.NewRegFile(m.cfg.Org, m.k.NumRegs, isa.WarpSize)
		}
		cta.warps = append(cta.warps, w)
		p.warps = append(p.warps, w)
		if m.prof != nil {
			m.prof.Partitions[p.idx].WarpsAssigned++
		}
	}
	cta.liveWarps = len(cta.warps)
	m.resident = append(m.resident, cta)
	m.liveWarps += len(cta.warps)
	if m.liveWarps > m.stats.MaxResidentWarps {
		m.stats.MaxResidentWarps = m.liveWarps
	}
}

// warpMask returns the active-lane mask for warp wi of a CTA (the last warp
// may be partial).
func (m *machine) warpMask(wi int) uint32 {
	remaining := m.k.CTAThreads - wi*isa.WarpSize
	if remaining >= isa.WarpSize {
		return ^uint32(0)
	}
	return (uint32(1) << uint(remaining)) - 1
}

const farFuture = int64(math.MaxInt64 / 4)

// depsReady is the wake-cache sentinel for "operands satisfied, class in
// cacheClass, only the token bucket left to check" (see warpReady).
const depsReady = int64(-1)

func (m *machine) run(ctx context.Context) error {
	if err := m.armMemHier(); err != nil {
		return err
	}
	lim, err := m.occupancy()
	if err != nil {
		return err
	}
	m.residentLimit = lim
	// The slot limit is what the SM would hold were registers and shared
	// memory free; running below it means occupancy was resource-capped.
	slotLim := m.cfg.MaxCTAs
	if byWarps := m.cfg.MaxWarps / m.warpsPerCTA; byWarps < slotLim {
		slotLim = byWarps
	}
	m.occCapped = lim < slotLim
	m.stats.ResidentWarpLimit = lim * m.warpsPerCTA
	m.initPartitions()

	m.inOrder = true
	workers := m.parallelWorkers()
	if workers > 1 {
		m.inOrder = false
		m.par = startParRunner(m, workers)
		defer m.par.stop()
	}
	if m.prof != nil {
		m.prof.Workers = workers
	}
	if m.flight != nil {
		// Black-box a panic before it unwinds past the launch: the bundle
		// then carries the decisions leading up to it.
		defer func() {
			if r := recover(); r != nil {
				m.failFlight(workers, fmt.Sprintf("panic: %v", r))
				panic(r)
			}
		}()
	}
	err = m.loop(ctx)
	if err != nil && ctx.Err() == nil && m.flight != nil {
		// Any non-cancellation launch failure — invariant violations,
		// deadlock, cycle-budget trip, partition errors — stamps the flight
		// recorder so the caller can dump a replayable bundle.
		m.failFlight(workers, err.Error())
	}
	return err
}

// failFlight records the failing launch's identity on the flight recorder:
// kernel/scheme select the exact code (compilation is deterministic), the
// config copy replays the same machine, and serial replay is bit-identical
// by the §13 determinism guarantee.
func (m *machine) failFlight(workers int, reason string) {
	m.flight.Fail(m.k.Name, m.k.Scheme, workers, m.cycle, *m.cfg, reason)
}

// parallelWorkers reports how many goroutines phase A may use. Armed faults,
// value tracing, observability, and the ECC register file all need the
// global in-order instruction stream (dyn numbering, callback order, shared
// stats), so they pin phase A to one goroutine; results are identical either
// way because both modes run the same per-partition code.
func (m *machine) parallelWorkers() int {
	w := m.cfg.Workers
	if w > len(m.parts) {
		w = len(m.parts)
	}
	if w < 2 || m.g.Fault != nil || m.g.Trace != nil || m.obsm != nil || m.cfg.ECC {
		return 1
	}
	return w
}

// loop is the round loop; run() does setup so tests can drive loop directly.
func (m *machine) loop(ctx context.Context) error {
	guard := int64(0)
	for {
		// Poll cancellation sparsely: a ctx.Err() load every 4096 scheduler
		// rounds is far below the simulator's per-round cost but bounds the
		// stop latency of a cancelled launch to microseconds.
		if guard&4095 == 0 {
			if err := ctx.Err(); err != nil {
				m.finalize()
				return fmt.Errorf("sm: kernel %s stopped at cycle %d: %w", m.k.Name, m.cycle, err)
			}
		}
		launched := false
		for len(m.resident) < m.residentLimit && m.nextCTA < m.k.GridCTAs {
			m.launchCTA()
			launched = true
		}
		if launched && m.cfg.Verify {
			m.checkResidency()
		}
		if m.liveWarps == 0 {
			if m.nextCTA >= m.k.GridCTAs {
				break
			}
			// Nothing resident yet CTAs remain: every iteration of this
			// relaunch path still goes through the guard, so the
			// cancellation poll and cycle guard above cannot be starved.
			guard++
			if guard > 1<<34 {
				return fmt.Errorf("sm: kernel %s exceeded cycle guard", m.k.Name)
			}
			continue
		}

		// Phase A: partitions issue independently. When profiling, the two
		// time.Now calls per round are the entire hot-path overhead of the
		// phase-A/merge wall attribution (§14 overhead budget).
		var tA time.Time
		if m.prof != nil {
			tA = time.Now()
		}
		if m.par != nil {
			m.par.round()
		} else {
			for _, p := range m.parts {
				p.step()
			}
		}
		if m.prof != nil {
			now := time.Now()
			m.profA += now.Sub(tA)
			tA = now
		}

		// Barrier: merge in fixed partition order.
		done, err := m.mergeRound()
		if m.prof != nil {
			m.profMerge += time.Since(tA)
		}
		if err != nil {
			return err
		}
		if done {
			break
		}

		guard++
		if guard > 1<<34 {
			return fmt.Errorf("sm: kernel %s exceeded cycle guard", m.k.Name)
		}
		if m.cfg.MaxCycles > 0 && m.cycle > m.cfg.MaxCycles {
			m.finalize()
			return fmt.Errorf("sm: kernel %s exceeded the %d-cycle budget (likely non-terminating)",
				m.k.Name, m.cfg.MaxCycles)
		}
	}
	m.finalize()
	if m.cfg.Verify {
		m.checkLaunchEnd()
		return m.invariantErr()
	}
	return nil
}

// mergeRound is the epoch barrier: the only place cross-partition state is
// touched, always in ascending partition order.
func (m *machine) mergeRound() (bool, error) {
	// 1. Partition errors abort the round before anything commits; the
	// lowest-index partition's error wins, deterministically.
	for _, p := range m.parts {
		if p.err != nil {
			return false, p.err
		}
	}
	// Deferred-log telemetry reads the lengths before the commits below
	// drain them; parked warps and stall profiles accumulate on the
	// partitions and fold at finalize.
	if m.prof != nil {
		for i, p := range m.parts {
			m.prof.ObserveLogs(i, len(p.wlog), len(p.slog), len(p.events))
		}
	}
	// 2. Commit deferred global- and shared-memory writes and replay
	// atomics in partition order, preserving each partition's program order.
	for _, p := range m.parts {
		if len(p.wlog) > 0 {
			p.commitMem()
		}
		if len(p.slog) > 0 {
			p.commitShared()
		}
	}
	// 2b. Service deferred memory-hierarchy transactions in partition order,
	// finalizing the pending-load scoreboard sentinels — before CTA events
	// and retirement, so a warp that issued its last load and EXITed this
	// round retires with concrete ready times.
	if m.mh != nil {
		m.serviceMem()
	}
	// 3. Apply deferred CTA events (barrier arrivals, warp exits) in
	// partition order, then release any barrier whose live warps have all
	// arrived.
	m.applyCTAEvents()
	// 4. Aggregate the round.
	issued := 0
	anyRetired := false
	for _, p := range m.parts {
		issued += p.issued
		if p.retired > 0 {
			anyRetired = true
		}
	}
	if anyRetired {
		m.retire()
	}
	// 5. Idle-skip: when no partition issued, jump to the earliest wake
	// across partitions and charge the skipped cycles to the blocking
	// reason of the nearest-to-ready warp.
	delta := int64(1)
	reason := stallNone
	if issued == 0 {
		minWake := farFuture
		minClass := isa.ClassFxP
		minMem := uint8(0)
		for _, p := range m.parts {
			if p.wake < minWake || reason == stallNone {
				minWake, reason, minClass, minMem = p.wake, p.reason, p.class, p.memc
			}
		}
		if minWake == farFuture {
			return false, fmt.Errorf("sm: kernel %s deadlocked at cycle %d", m.k.Name, m.cycle)
		}
		delta = minWake - m.cycle
		if delta < 1 {
			delta = 1
		}
		if m.cfg.Verify {
			m.checkIdleRound(reason)
		}
		m.idleRounds[reason]++
		m.chargeIdle(reason, minClass, minMem, delta)
	} else {
		m.stats.IssueCycles += delta
	}
	if m.prof != nil {
		m.prof.Rounds++
		if issued == 0 {
			m.prof.IdleRounds++
			m.prof.SkippedCycles += delta - 1
		}
	}
	if m.frMerge != nil {
		if issued == 0 {
			m.frMerge.Add(simprof.Decision{Cycle: m.cycle, Warp: -1, PC: -1,
				Kind: simprof.KindSkip, Reason: uint8(reason), Aux: delta})
		} else {
			m.frMerge.Add(simprof.Decision{Cycle: m.cycle, Warp: -1, PC: -1,
				Kind: simprof.KindMerge, Aux: int64(issued)})
		}
	}
	// 6. Advance time and refill every partition's token buckets.
	m.cycle += delta
	for _, p := range m.parts {
		p.refill(delta)
	}
	if m.obsm != nil {
		m.obsm.round(m, issued, delta, reason)
	}
	return m.liveWarps == 0 && m.nextCTA >= m.k.GridCTAs, nil
}

// applyCTAEvents moves the round's deferred barrier arrivals and warp exits
// onto their CTAs in partition order, then runs the barrier release check on
// every touched CTA: once all of a CTA's still-live warps have arrived, every
// waiting warp is released (and its wake cache cleared). Batching arrivals,
// exits, and releases at the merge is what makes the outcome independent of
// which goroutine ran which partition — and it also covers the exit-releases-
// barrier case (the last non-waiting warp exits, satisfying the barrier).
func (m *machine) applyCTAEvents() {
	touched := m.ctaScratch[:0]
	for _, p := range m.parts {
		for _, ev := range p.events {
			if ev.arrive {
				ev.cta.arrived++
			} else {
				ev.cta.liveWarps--
			}
			touched = append(touched, ev.cta)
		}
		p.events = p.events[:0]
	}
	for _, c := range touched {
		// Idempotent across duplicate entries: a released CTA has arrived==0.
		if c.arrived > 0 && c.arrived >= c.liveWarps {
			for _, w := range c.warps {
				if w.atBarrier {
					w.atBarrier = false
					w.cacheWake = 0
				}
			}
			c.arrived = 0
		}
	}
	m.ctaScratch = touched[:0]
}

// finalize stamps the cycle count, folds the per-partition statistic deltas
// into the public Stats maps, and flushes pending observability state; every
// run() exit path (completion and cancellation) goes through it.
func (m *machine) finalize() {
	m.stats.Cycles = m.cycle
	m.stats.UnknownClassOps = m.unknownClass
	if m.mh != nil {
		mst := m.mh.Stats()
		m.stats.Mem = &mst
	}
	for _, p := range m.parts {
		m.stats.DynWarpInstrs += p.instrs
		m.stats.StallDeps += p.stallDeps
		m.stats.StallThrottle += p.stallThrottle
		m.stats.StallBarrier += p.stallBarrier
		m.stats.StallNoWarp += p.stallNoWarp
		m.stats.UnknownClassOps += p.unknownClass
		if p.trapped {
			m.stats.Trapped = true
		}
		for cl, v := range p.perClass {
			if v != 0 {
				m.stats.PerClass[isa.Class(cl)] += v
			}
		}
		for cat, v := range p.perCat {
			if v != 0 {
				m.stats.PerCat[isa.Category(cat)] += v
			}
		}
	}
	for cl, v := range m.depCyc {
		if v != 0 {
			m.stats.DepCyclesPerClass[isa.Class(cl)] += v
		}
	}
	for cl, v := range m.thrCyc {
		if v != 0 {
			m.stats.ThrottleCyclesPerClass[isa.Class(cl)] += v
		}
	}
	if m.obsm != nil {
		m.obsm.finish(m)
	}
	if m.prof != nil {
		m.finalizeProf()
	}
}

// finalizeProf folds the per-partition counters into the launch profile and
// stamps identity; like finalize itself it runs on every exit path, so a
// cancelled or failed launch still reports a coherent partial profile.
func (m *machine) finalizeProf() {
	lp := m.prof
	lp.Kernel = m.k.Name
	lp.Scheme = m.k.Scheme
	if lp.Scheme == "" {
		lp.Scheme = "none"
	}
	lp.Cycles = m.cycle
	lp.PhaseAWall = m.profA
	lp.MergeWall = m.profMerge
	for i, p := range m.parts {
		pp := &lp.Partitions[i]
		pp.Issued = p.instrs
		pp.StallDeps = p.stallDeps
		pp.StallThrottle = p.stallThrottle
		pp.StallBarrier = p.stallBarrier
		pp.StallNoWarp = p.stallNoWarp
		pp.Parked = p.parks
	}
	// Surface the profile on the live registry when a recorder is armed
	// (in-order mode): /metrics and /timeseries then carry the simprof.*
	// families next to the sm.* ones.
	if m.obsm != nil {
		lp.EmitMetrics(m.obsm.rec.Registry())
	}
}

// retire removes finished warps from their partitions and recycles completed
// CTAs. (liveWarps is decremented at EXIT time so barrier release logic sees
// it immediately; m.liveWarps tracks resident warps and drops here.)
func (m *machine) retire() {
	for _, p := range m.parts {
		if p.retired == 0 {
			continue
		}
		live := p.warps[:0]
		for _, w := range p.warps {
			if w.done {
				if m.obsm != nil {
					m.obsm.warpDone(m, w)
				}
				if m.cfg.Verify {
					m.checkWarpRetired(w)
				}
				if m.g.RetireHook != nil {
					m.g.RetireHook(w.cta.id, w.idInCTA, w.regs, w.preds[:])
				}
				m.liveWarps--
				continue
			}
			live = append(live, w)
		}
		p.warps = live
		p.retired = 0
	}
	res := m.resident[:0]
	for _, c := range m.resident {
		if c.liveWarps > 0 {
			res = append(res, c)
			continue
		}
		// All warps retired this barrier or earlier; the CTA and its warps
		// go back to the scratch pools.
		putCTA(c)
	}
	m.resident = res
}

// chargeIdle attributes one fully-idle round of delta cycles to a CPI-stack
// component. Dependence and warp-starvation idles while the SM is
// occupancy-capped with CTAs still waiting for residency are charged to the
// occupancy component: the warps the cap denied could have covered that
// latency, which is exactly how register pressure becomes cycles. Throttle
// and barrier idles keep their proximate reason — more resident warps
// neither relieve a saturated issue pipe nor release a barrier earlier.
// Dependence and throttle charges are additionally sub-attributed to the
// pipe class being waited on.
//
// A dependence idle whose nearest-to-ready warp waits on a hierarchy load
// (memc != 0, only possible with MemModel armed) is charged to that load's
// bounding level instead — taking precedence over BOTH the generic deps
// component and the occupancy re-attribution, because "which level of the
// memory system is the latency in" is the question the memory CPI stack
// exists to answer, and occupancy-capped memory-bound kernels are its
// primary subject.
func (m *machine) chargeIdle(reason stallReason, cl isa.Class, memc uint8, delta int64) {
	if reason == stallDeps && memc != 0 {
		switch memmodel.Level(memc) {
		case memmodel.LevelL2:
			m.stats.StallCyclesMemL2 += delta
		case memmodel.LevelDRAM:
			m.stats.StallCyclesMemDRAM += delta
		case memmodel.LevelMSHR:
			m.stats.StallCyclesMemMSHR += delta
		default:
			m.stats.StallCyclesMemL1 += delta
		}
		return
	}
	if m.occCapped && m.nextCTA < m.k.GridCTAs && (reason == stallDeps || reason == stallNoWarp) {
		m.stats.StallCyclesOccupancy += delta
		return
	}
	switch reason {
	case stallDeps:
		m.stats.StallCyclesDeps += delta
		m.depCyc[cl] += delta
	case stallThrottle:
		m.stats.StallCyclesThrottle += delta
		m.thrCyc[cl] += delta
	case stallBarrier:
		m.stats.StallCyclesBarrier += delta
	default:
		m.stats.StallCyclesNoWarp += delta
	}
}

// stallReason classifies why a warp could not issue.
type stallReason uint8

const (
	stallNone stallReason = iota
	stallDeps
	stallThrottle
	stallBarrier
	stallNoWarp
)
