package sm

import (
	"context"
	"fmt"
	"math"

	"swapcodes/internal/core"
	"swapcodes/internal/isa"
)

// simtEntry is one level of the per-warp reconvergence stack.
type simtEntry struct {
	pc     int32
	mask   uint32
	reconv int32 // -1 for the base entry
}

type warpState struct {
	cta        *ctaState
	idInCTA    int
	gid        int   // global warp id (unique across the launch)
	startCycle int64 // cycle the warp became resident
	sched      int
	stack      []simtEntry
	regs       []uint32 // reg*32 + lane
	preds      [8]uint32
	regReady   []int64
	predReady  [8]int64
	// regClass/predClass remember the pipe class of the last producer of
	// each register/predicate, so dependence stalls can be attributed to
	// the pipe whose latency is being waited out (the CPI-stack per-class
	// breakdown).
	regClass  []uint8
	predClass [8]uint8
	rf         *core.RegFile
	atBarrier  bool
	done       bool
}

func (w *warpState) top() *simtEntry { return &w.stack[len(w.stack)-1] }

type ctaState struct {
	id        int
	shared    []uint32
	warps     []*warpState
	liveWarps int
	arrived   int
}

type machine struct {
	g     *GPU
	cfg   *Config
	k     *isa.Kernel
	stats *Stats

	warpsPerCTA   int
	residentLimit int
	// occCapped records that registers or shared memory capped residency
	// below the SM's warp-slot limit — the precondition for charging idle
	// cycles to the CPI stack's occupancy component.
	occCapped bool
	nextCTA   int
	resident      []*ctaState
	warps         []*warpState // all live resident warps
	tokens        [10]float64
	cycle         int64
	dyn           int64
	// faultCycle is the cycle the armed FaultPlan fired at (-1 before),
	// the reference point for detection-latency measurement.
	faultCycle int64
	// obsm is non-nil only when GPU.Obs carries a recorder; the cycle loop
	// guards every observation behind this one nil check.
	obsm *smObs
	// violations accumulates dynamic invariant failures when Config.Verify
	// is set (see invariants.go).
	violations []string
}

func newMachine(g *GPU, k *isa.Kernel) *machine {
	m := &machine{g: g, cfg: &g.Cfg, k: k, faultCycle: -1,
		stats: &Stats{PerClass: make(map[isa.Class]int64), PerCat: make(map[isa.Category]int64),
			DepCyclesPerClass:      make(map[isa.Class]int64),
			ThrottleCyclesPerClass: make(map[isa.Class]int64)}}
	m.warpsPerCTA = (k.CTAThreads + isa.WarpSize - 1) / isa.WarpSize
	if g.Obs != nil {
		m.obsm = newSMObs(g.Obs, k)
	}
	return m
}

// occupancy computes the resident CTA limit from warp slots, register file
// capacity, and shared memory — the mechanism through which duplication's
// register pressure costs parallelism.
func (m *machine) occupancy() (int, error) {
	cfg := m.cfg
	lim := cfg.MaxCTAs
	if byWarps := cfg.MaxWarps / m.warpsPerCTA; byWarps < lim {
		lim = byWarps
	}
	regsPerThread := m.k.NumRegs
	if g := cfg.RegAllocGranule; g > 1 {
		regsPerThread = (regsPerThread + g - 1) / g * g
	}
	regsPerCTA := regsPerThread * m.warpsPerCTA * isa.WarpSize
	if regsPerCTA > 0 {
		if byRegs := cfg.RegFileWords / regsPerCTA; byRegs < lim {
			lim = byRegs
		}
	}
	if m.k.SharedWords > 0 {
		if byShm := cfg.SharedWords / m.k.SharedWords; byShm < lim {
			lim = byShm
		}
	}
	if lim < 1 {
		return 0, fmt.Errorf("sm: kernel %s does not fit: %d regs/thread, %d shared words",
			m.k.Name, m.k.NumRegs, m.k.SharedWords)
	}
	return lim, nil
}

func (m *machine) launchCTA() {
	cta := &ctaState{id: m.nextCTA, shared: make([]uint32, m.k.SharedWords)}
	m.nextCTA++
	for wi := 0; wi < m.warpsPerCTA; wi++ {
		w := &warpState{
			cta: cta, idInCTA: wi,
			gid: cta.id*m.warpsPerCTA + wi, startCycle: m.cycle,
			sched:    len(m.warps) % m.cfg.Schedulers,
			stack:    []simtEntry{{pc: 0, mask: m.warpMask(wi), reconv: -1}},
			regs:     make([]uint32, m.k.NumRegs*isa.WarpSize),
			regReady: make([]int64, m.k.NumRegs+2),
			regClass: make([]uint8, m.k.NumRegs+2),
		}
		if m.cfg.ECC {
			w.rf = core.NewRegFile(m.cfg.Org, m.k.NumRegs, isa.WarpSize)
		}
		cta.warps = append(cta.warps, w)
		m.warps = append(m.warps, w)
	}
	cta.liveWarps = len(cta.warps)
	m.resident = append(m.resident, cta)
	if n := len(m.warps); n > m.stats.MaxResidentWarps {
		m.stats.MaxResidentWarps = n
	}
}

// warpMask returns the active-lane mask for warp wi of a CTA (the last warp
// may be partial).
func (m *machine) warpMask(wi int) uint32 {
	remaining := m.k.CTAThreads - wi*isa.WarpSize
	if remaining >= isa.WarpSize {
		return ^uint32(0)
	}
	return (uint32(1) << uint(remaining)) - 1
}

const farFuture = int64(math.MaxInt64 / 4)

func (m *machine) run(ctx context.Context) error {
	lim, err := m.occupancy()
	if err != nil {
		return err
	}
	m.residentLimit = lim
	// The slot limit is what the SM would hold were registers and shared
	// memory free; running below it means occupancy was resource-capped.
	slotLim := m.cfg.MaxCTAs
	if byWarps := m.cfg.MaxWarps / m.warpsPerCTA; byWarps < slotLim {
		slotLim = byWarps
	}
	m.occCapped = lim < slotLim
	m.stats.ResidentWarpLimit = lim * m.warpsPerCTA
	for i := range m.tokens {
		m.tokens[i] = 1
	}
	guard := int64(0)
	for {
		// Poll cancellation sparsely: a ctx.Err() load every 4096 scheduler
		// rounds is far below the simulator's per-round cost but bounds the
		// stop latency of a cancelled launch to microseconds.
		if guard&4095 == 0 {
			if err := ctx.Err(); err != nil {
				m.finalize()
				return fmt.Errorf("sm: kernel %s stopped at cycle %d: %w", m.k.Name, m.cycle, err)
			}
		}
		launched := false
		for len(m.resident) < m.residentLimit && m.nextCTA < m.k.GridCTAs {
			m.launchCTA()
			launched = true
		}
		if launched && m.cfg.Verify {
			m.checkResidency()
		}
		if len(m.warps) == 0 {
			if m.nextCTA >= m.k.GridCTAs {
				break
			}
			continue
		}
		issuedSlots := 0
		minWake := farFuture
		minReason := stallNone
		minClass := isa.ClassFxP
		slots := m.cfg.IssuePerSched
		if slots < 1 {
			slots = 1
		}
		for s := 0; s < m.cfg.Schedulers; s++ {
			for slot := 0; slot < slots; slot++ {
				w, wake, reason, cl := m.pickWarp(s)
				if w == nil {
					if wake < minWake || minReason == stallNone {
						minWake = wake
						minReason = reason
						minClass = cl
					}
					switch reason {
					case stallDeps:
						m.stats.StallDeps++
					case stallThrottle:
						m.stats.StallThrottle++
					case stallBarrier:
						m.stats.StallBarrier++
					default:
						m.stats.StallNoWarp++
					}
					break
				}
				if err := m.issue(w); err != nil {
					return err
				}
				issuedSlots++
			}
		}
		m.retire()
		delta := int64(1)
		if issuedSlots == 0 {
			if minWake == farFuture {
				return fmt.Errorf("sm: kernel %s deadlocked at cycle %d", m.k.Name, m.cycle)
			}
			delta = minWake - m.cycle
			if delta < 1 {
				delta = 1
			}
			// Fully-idle rounds are charged to the blocking reason of the
			// nearest-to-ready warp (the cycle-level stall attribution).
			m.chargeIdle(minReason, minClass, delta)
		} else {
			m.stats.IssueCycles += delta
		}
		m.advance(delta)
		if m.obsm != nil {
			m.obsm.round(m, issuedSlots, delta, minReason)
		}
		guard++
		if guard > 1<<34 {
			return fmt.Errorf("sm: kernel %s exceeded cycle guard", m.k.Name)
		}
		if m.cfg.MaxCycles > 0 && m.cycle > m.cfg.MaxCycles {
			m.finalize()
			return fmt.Errorf("sm: kernel %s exceeded the %d-cycle budget (likely non-terminating)",
				m.k.Name, m.cfg.MaxCycles)
		}
	}
	m.finalize()
	if m.cfg.Verify {
		m.checkLaunchEnd()
		return m.invariantErr()
	}
	return nil
}

// finalize stamps the cycle count and flushes pending observability state;
// every run() exit path (completion and cancellation) goes through it.
func (m *machine) finalize() {
	m.stats.Cycles = m.cycle
	if m.obsm != nil {
		m.obsm.finish(m)
	}
}

func (m *machine) advance(delta int64) {
	m.cycle += delta
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		m.tokens[cl] += m.cfg.rate(cl) * float64(delta)
		if m.tokens[cl] > 8 {
			m.tokens[cl] = 8
		}
	}
}

// retire removes finished warps and completed CTAs. (liveWarps is
// decremented at EXIT time so barrier release logic sees it immediately.)
func (m *machine) retire() {
	live := m.warps[:0]
	for _, w := range m.warps {
		if w.done {
			if m.obsm != nil {
				m.obsm.warpDone(m, w)
			}
			if m.cfg.Verify {
				m.checkWarpRetired(w)
			}
			if m.g.RetireHook != nil {
				m.g.RetireHook(w.cta.id, w.idInCTA, w.regs, w.preds[:])
			}
			continue
		}
		live = append(live, w)
	}
	m.warps = live
	res := m.resident[:0]
	for _, c := range m.resident {
		if c.liveWarps > 0 {
			res = append(res, c)
		}
	}
	m.resident = res
}

// chargeIdle attributes one fully-idle round of delta cycles to a CPI-stack
// component. Dependence and warp-starvation idles while the SM is
// occupancy-capped with CTAs still waiting for residency are charged to the
// occupancy component: the warps the cap denied could have covered that
// latency, which is exactly how register pressure becomes cycles. Throttle
// and barrier idles keep their proximate reason — more resident warps
// neither relieve a saturated issue pipe nor release a barrier earlier.
// Dependence and throttle charges are additionally sub-attributed to the
// pipe class being waited on.
func (m *machine) chargeIdle(reason stallReason, cl isa.Class, delta int64) {
	if m.occCapped && m.nextCTA < m.k.GridCTAs && (reason == stallDeps || reason == stallNoWarp) {
		m.stats.StallCyclesOccupancy += delta
		return
	}
	switch reason {
	case stallDeps:
		m.stats.StallCyclesDeps += delta
		m.stats.DepCyclesPerClass[cl] += delta
	case stallThrottle:
		m.stats.StallCyclesThrottle += delta
		m.stats.ThrottleCyclesPerClass[cl] += delta
	case stallBarrier:
		m.stats.StallCyclesBarrier += delta
	default:
		m.stats.StallCyclesNoWarp += delta
	}
}

// stallReason classifies why a warp could not issue.
type stallReason uint8

const (
	stallNone stallReason = iota
	stallDeps
	stallThrottle
	stallBarrier
	stallNoWarp
)

// pickWarp scans scheduler s's warps round-robin for one that can issue;
// when none can, it returns the earliest wake time, the blocking reason of
// the nearest-to-ready warp, and the pipe class that reason attributes to
// (the waited-on producer's class for dependences, the saturated pipe for
// throttle).
func (m *machine) pickWarp(s int) (*warpState, int64, stallReason, isa.Class) {
	minWake := farFuture
	reason := stallNoWarp
	class := isa.ClassFxP
	n := len(m.warps)
	start := int(m.cycle) % max(n, 1)
	for i := 0; i < n; i++ {
		w := m.warps[(start+i)%n]
		if w.sched != s || w.done {
			continue
		}
		ready, wake, r, cl := m.warpReady(w)
		if ready {
			return w, 0, stallNone, cl
		}
		if wake < minWake || reason == stallNoWarp {
			minWake = wake
			reason = r
			class = cl
		}
	}
	return nil, minWake, reason, class
}

// warpReady checks scoreboard and structural constraints for the warp's
// next instruction. The returned class attributes a stall: for dependence
// stalls it is the pipe class of the producer whose result the warp waits
// on longest; for throttle stalls, the saturated pipe.
func (m *machine) warpReady(w *warpState) (bool, int64, stallReason, isa.Class) {
	if w.atBarrier {
		return false, farFuture, stallBarrier, isa.ClassControl // released by the last arrival
	}
	in := &m.k.Code[w.top().pc]
	wake := m.cycle
	blockCl := isa.ClassFxP

	dep := func(r isa.Reg, wide bool) {
		if r == isa.RZ {
			return
		}
		if t := w.regReady[r]; t > wake {
			wake = t
			blockCl = isa.Class(w.regClass[r])
		}
		if wide {
			if t := w.regReady[r+1]; t > wake {
				wake = t
				blockCl = isa.Class(w.regClass[r+1])
			}
		}
	}
	for si, src := range in.Src {
		if si == 1 && in.HasImm {
			continue
		}
		wide := false
		switch in.Op {
		case isa.DADD, isa.DSUB, isa.DMUL:
			wide = si < 2
		case isa.DFMA:
			wide = true
		case isa.IMAD:
			wide = in.Wide && si == 2
		}
		dep(src, wide)
	}
	if in.GuardPred >= 0 && in.GuardPred < isa.PT {
		if t := w.predReady[in.GuardPred]; t > wake {
			wake = t
			blockCl = isa.Class(w.predClass[in.GuardPred])
		}
	}
	if wake > m.cycle {
		return false, wake, stallDeps, blockCl
	}
	cl := in.Op.Class()
	if m.tokens[cl] < 1 {
		need := (1 - m.tokens[cl]) / m.cfg.rate(cl)
		return false, m.cycle + int64(need) + 1, stallThrottle, cl
	}
	return true, 0, stallNone, cl
}

// issue consumes a token, executes the instruction functionally, and
// updates the scoreboard.
func (m *machine) issue(w *warpState) error {
	in := &m.k.Code[w.top().pc]
	cl := in.Op.Class()
	m.tokens[cl]--
	m.stats.DynWarpInstrs++
	m.stats.PerClass[cl]++
	m.stats.PerCat[in.Cat]++
	m.dyn++

	if err := m.exec(w, in); err != nil {
		return err
	}

	// Scoreboard: the destination becomes readable after the pipe latency;
	// WAW writes merge to the max (both must land before a read).
	if in.WritesReg() {
		lat := m.cfg.latency(cl)
		t := m.cycle + lat
		if t > w.regReady[in.Dst] {
			w.regReady[in.Dst] = t
		}
		w.regClass[in.Dst] = uint8(cl)
		if in.Is64Dst() {
			if t > w.regReady[in.Dst+1] {
				w.regReady[in.Dst+1] = t
			}
			w.regClass[in.Dst+1] = uint8(cl)
		}
	}
	if (in.Op == isa.ISETP || in.Op == isa.FSETP) && in.DstPred >= 0 && in.DstPred < isa.PT {
		// The predicate lands with the producing pipe's latency: FSETP is a
		// ClassFP32 op, so its comparison takes the FP32 pipe's depth, not
		// the integer pipe's.
		w.predReady[in.DstPred] = m.cycle + m.cfg.latency(cl)
		w.predClass[in.DstPred] = uint8(cl)
	}
	return nil
}
