package sm_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
	"swapcodes/internal/obs"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

// This file gates the partitioned round loop (DESIGN.md Section 13): the
// cached fast path and the parallel phase A must be BIT-IDENTICAL to the
// full-rescan reference scheduler — same Stats, same CPI stack, same final
// memory — on every workload, under every scheme, at every worker count.

var diffWorkers = []int{0, 1, 2, 4}

var diffSchemes = []compiler.Scheme{
	compiler.Baseline, compiler.SWDup, compiler.SwapECC, compiler.InterThread,
}

func launchWith(t *testing.T, w *workloads.Workload, k *isa.Kernel, s compiler.Scheme, cfg sm.Config) (*sm.Stats, []uint32) {
	t.Helper()
	g := w.NewGPU(cfg)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatalf("%s/%v: %v", w.Name, s, err)
	}
	if err := w.Verify(g); err != nil {
		t.Fatalf("%s/%v: %v", w.Name, s, err)
	}
	return st, g.Mem
}

// TestParallelSMDifferential sweeps every workload x scheme and requires the
// default (wake-cached) scheduler and the parallel loop at 1/2/4 workers to
// reproduce the reference scheduler's results exactly.
func TestParallelSMDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, w := range workloads.All() {
		for _, s := range diffSchemes {
			k, err := compiler.Apply(w.Kernel, s)
			if err != nil {
				continue // scheme not applicable (e.g. doubled CTA too large)
			}
			ref := sm.DefaultConfig()
			ref.Reference = true
			refSt, refMem := launchWith(t, w, k, s, ref)
			refStack := refSt.CPIStack(w.Name, "x")
			for _, workers := range diffWorkers {
				cfg := sm.DefaultConfig()
				cfg.Workers = workers
				st, mem := launchWith(t, w, k, s, cfg)
				if !reflect.DeepEqual(st, refSt) {
					t.Errorf("%s/%v workers=%d: Stats diverge from reference\n got %+v\nwant %+v",
						w.Name, s, workers, st, refSt)
				}
				if !reflect.DeepEqual(st.CPIStack(w.Name, "x"), refStack) {
					t.Errorf("%s/%v workers=%d: CPI stack diverges from reference", w.Name, s, workers)
				}
				if !reflect.DeepEqual(mem, refMem) {
					t.Errorf("%s/%v workers=%d: final memory diverges from reference", w.Name, s, workers)
				}
			}
		}
	}
}

// TestParallelSMDifferentialVerifyMode re-runs a slice of the sweep with the
// dynamic invariants on, so the idle-round audit (checkIdleRound) and the
// stall-accounting reconciliation actually execute against both scheduler
// paths.
func TestParallelSMDifferentialVerifyMode(t *testing.T) {
	for _, name := range []string{"lavaMD", "hspot", "srad_v2"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 4} {
			cfg := sm.DefaultConfig()
			cfg.Workers = workers
			cfg.Verify = true
			if _, err := w.NewGPU(cfg).Launch(compiler.MustApply(w.Kernel, compiler.SwapECC)); err != nil {
				t.Errorf("%s workers=%d: %v", name, workers, err)
			}
			ref := sm.DefaultConfig()
			ref.Reference = true
			ref.Verify = true
			if _, err := w.NewGPU(ref).Launch(compiler.MustApply(w.Kernel, compiler.SwapECC)); err != nil {
				t.Errorf("%s reference: %v", name, err)
			}
		}
	}
}

// TestParallelSMCancellation cancels a launch mid-flight at several worker
// counts and requires the partial-result contract to hold: non-nil stats,
// the context error wrapped, and a cycle count short of the full run.
func TestParallelSMCancellation(t *testing.T) {
	w, err := workloads.ByName("lavaMD")
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.NewGPU(sm.DefaultConfig()).Launch(w.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		cfg := sm.DefaultConfig()
		cfg.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		timer := time.AfterFunc(time.Millisecond, cancel)
		st, err := w.NewGPU(cfg).LaunchContext(ctx, w.Kernel)
		timer.Stop()
		cancel()
		if err == nil {
			t.Logf("workers=%d: launch finished before the cancel landed", workers)
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if st == nil {
			t.Fatalf("workers=%d: no partial stats on cancellation", workers)
		}
		if st.Cycles >= full.Cycles {
			t.Errorf("workers=%d: cancelled run simulated %d cycles, full run %d",
				workers, st.Cycles, full.Cycles)
		}
	}
}

// TestParallelSMObsInOrderFallback: observability needs the in-order stream,
// so a launch with a recorder ignores Workers — and its stats must match the
// serial run's exactly.
func TestParallelSMObsInOrderFallback(t *testing.T) {
	w, err := workloads.ByName("hspot")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *sm.Stats {
		cfg := sm.DefaultConfig()
		cfg.Workers = workers
		g := w.NewGPU(cfg)
		g.Obs = obs.NewRecorder()
		st, err := g.Launch(w.Kernel)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if got, want := run(4), run(0); !reflect.DeepEqual(got, want) {
		t.Errorf("obs launch diverges across Workers: got %+v want %+v", got, want)
	}
}
