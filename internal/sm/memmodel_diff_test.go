package sm_test

import (
	"reflect"
	"strings"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/obs/cpistack"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

// Gates on the opt-in memory hierarchy (sm.Config.MemModel, DESIGN.md
// section 15). The contract has two halves: with the model off the
// simulator must be BIT-IDENTICAL to the seed flat-latency path — the
// hierarchy code may cost one nil check and nothing else — and with it
// armed the simulation must stay deterministic across worker counts and
// keep every conservation law (CPI partition, retire horizon) intact.

// TestMemModelOffBitIdentical: MemModel "off" (and its "" spelling) must
// reproduce the default configuration's Stats, CPI stack, and final memory
// exactly, on every workload x scheme, at every worker count.
func TestMemModelOffBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep")
	}
	for _, w := range workloads.All() {
		for _, s := range diffSchemes {
			k, err := compiler.Apply(w.Kernel, s)
			if err != nil {
				continue // scheme not applicable
			}
			refSt, refMem := launchWith(t, w, k, s, sm.DefaultConfig())
			for _, workers := range diffWorkers {
				cfg := sm.DefaultConfig()
				cfg.Workers = workers
				cfg.MemModel = "off"
				st, mem := launchWith(t, w, k, s, cfg)
				if !reflect.DeepEqual(st, refSt) {
					t.Errorf("%s/%v workers=%d: MemModel=off Stats diverge from seed path\n got %+v\nwant %+v",
						w.Name, s, workers, st, refSt)
				}
				if !reflect.DeepEqual(mem, refMem) {
					t.Errorf("%s/%v workers=%d: MemModel=off final memory diverges from seed path",
						w.Name, s, workers)
				}
				if st.Mem != nil || st.MemStallCycles() != 0 {
					t.Errorf("%s/%v workers=%d: flat path carries hierarchy state (Mem=%v, stalls=%d)",
						w.Name, s, workers, st.Mem, st.MemStallCycles())
				}
				if st.UnknownClassOps != 0 {
					t.Errorf("%s/%v workers=%d: %d unknown-class fallbacks on a real kernel",
						w.Name, s, workers, st.UnknownClassOps)
				}
			}
		}
	}
}

// memDiffWorkloads keeps the armed differential affordable: two
// memory-bound kernels (bfs, gauss), the dense compute one (mm), and the
// barrier-heavy one (lavaMD).
var memDiffWorkloads = []string{"bfs", "gauss", "mm", "lavaMD"}

// TestMemModelArmedDifferential: the armed hierarchy must be bit-identical
// across the reference scheduler, the cached serial loop, and the parallel
// loop at every worker count — all hierarchy state advances on the barrier
// thread in partition order, so worker count cannot move a single fill.
func TestMemModelArmedDifferential(t *testing.T) {
	for _, name := range memDiffWorkloads {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []compiler.Scheme{compiler.Baseline, compiler.SwapECC} {
			k, err := compiler.Apply(w.Kernel, s)
			if err != nil {
				continue
			}
			ref := sm.DefaultConfig()
			ref.Reference = true
			ref.MemModel = "sectored"
			refSt, refMem := launchWith(t, w, k, s, ref)
			for _, workers := range diffWorkers {
				cfg := sm.DefaultConfig()
				cfg.Workers = workers
				cfg.MemModel = "sectored"
				st, mem := launchWith(t, w, k, s, cfg)
				if !reflect.DeepEqual(st, refSt) {
					t.Errorf("%s/%v workers=%d: armed Stats diverge from reference\n got %+v\nwant %+v",
						w.Name, s, workers, st, refSt)
				}
				if !reflect.DeepEqual(mem, refMem) {
					t.Errorf("%s/%v workers=%d: armed final memory diverges from reference",
						w.Name, s, workers)
				}
			}
		}
	}
}

// TestMemModelArmedVerifyMode re-runs armed launches with the dynamic
// invariants on, so the CPI-partition law, the idle-round audit, and the
// hierarchy-extended retire horizon actually execute against the armed
// scheduler.
func TestMemModelArmedVerifyMode(t *testing.T) {
	for _, name := range []string{"bfs", "gauss"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 4} {
			cfg := sm.DefaultConfig()
			cfg.Workers = workers
			cfg.MemModel = "sectored"
			cfg.Verify = true
			launchWith(t, w, w.Kernel, compiler.Baseline, cfg)
		}
	}
}

// TestMemModelArmedCPIPartition: the armed CPI stack must still partition
// the cycle count exactly, now across ten components, and the memory-bound
// kernels must actually charge memory-tier stalls — the acceptance check
// behind the -exp memcpi tables.
func TestMemModelArmedCPIPartition(t *testing.T) {
	for _, name := range []string{"bfs", "gauss"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sm.DefaultConfig()
		cfg.MemModel = "sectored"
		st, _ := launchWith(t, w, w.Kernel, compiler.Baseline, cfg)
		stack := st.CPIStack(w.Name, "baseline")
		if stack.Sum() != st.Cycles {
			t.Errorf("%s: armed components sum to %d, want %d (stack %+v)",
				w.Name, stack.Sum(), st.Cycles, stack.Comp)
		}
		if st.MemStallCycles() == 0 {
			t.Errorf("%s: memory-bound kernel charged zero memory-tier stalls (stack %+v)",
				w.Name, stack.Comp)
		}
		var memSum int64
		for _, c := range cpistack.MemComponents() {
			memSum += stack.Comp[c]
		}
		if memSum != st.MemStallCycles() {
			t.Errorf("%s: stack mem components sum to %d, Stats say %d", w.Name, memSum, st.MemStallCycles())
		}
		if st.Mem == nil {
			t.Fatalf("%s: armed launch carries no hierarchy counters", w.Name)
		}
		if st.Mem.L1Hits+st.Mem.L1Misses == 0 {
			t.Errorf("%s: hierarchy saw no load sectors", w.Name)
		}
		if st.Mem.LoadAccesses == 0 {
			t.Errorf("%s: hierarchy saw no load transactions", w.Name)
		}
	}
}

// TestMemModelArmedChangesTiming: arming the hierarchy must actually move
// cycle counts on a memory-bound kernel (otherwise the tier is dead code),
// while leaving functional output untouched (launchWith verifies it).
func TestMemModelArmedChangesTiming(t *testing.T) {
	w, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	flatSt, _ := launchWith(t, w, w.Kernel, compiler.Baseline, sm.DefaultConfig())
	cfg := sm.DefaultConfig()
	cfg.MemModel = "sectored"
	armedSt, _ := launchWith(t, w, w.Kernel, compiler.Baseline, cfg)
	if armedSt.Cycles == flatSt.Cycles {
		t.Errorf("armed and flat launches both took %d cycles; the hierarchy changed nothing", flatSt.Cycles)
	}
	if armedSt.DynWarpInstrs != flatSt.DynWarpInstrs {
		t.Errorf("arming the timing model changed the instruction count: %d vs %d",
			armedSt.DynWarpInstrs, flatSt.DynWarpInstrs)
	}
}

// TestMemModelUnknownRejected: a typo'd MemModel must fail the launch with
// a diagnostic naming the valid values, not silently run some path.
func TestMemModelUnknownRejected(t *testing.T) {
	w, err := workloads.ByName("mm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sm.DefaultConfig()
	cfg.MemModel = "sectered" // typo
	g := w.NewGPU(cfg)
	_, lerr := g.Launch(w.Kernel)
	if lerr == nil {
		t.Fatal("unknown MemModel launched cleanly")
	}
	if !strings.Contains(lerr.Error(), "sectered") || !strings.Contains(lerr.Error(), "sectored") {
		t.Errorf("diagnostic %q should name the bad value and the valid ones", lerr.Error())
	}
}
