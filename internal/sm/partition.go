package sm

import (
	"swapcodes/internal/isa"
	"swapcodes/internal/obs/simprof"
)

// memEvent is one deferred global-memory effect, recorded in program order
// during phase A and committed at the barrier. A nil atom is a plain store.
type memEvent struct {
	addr int32
	val  uint32
	atom *atomOp
}

// atomOp captures an ATOM at issue time: per-lane addresses and operand
// values (reads of the issuing warp's registers, which cannot change before
// the barrier because the warp is atomHold-parked). The read-modify-write
// itself happens at the barrier replay, serialized across partitions in
// partition order — concurrent atomics to one address never lose updates.
type atomOp struct {
	w      *warpState
	in     *isa.Instr
	mask   uint32
	addr   [isa.WarpSize]int32
	val    [isa.WarpSize]uint32
	cmp    [isa.WarpSize]uint32
	inject bool // armed fault targets this instruction (in-order mode only)
}

// ctaEvent is a deferred warp-lifecycle effect on a CTA that other
// partitions may share: a barrier arrival or a warp exit. Partitions log
// them during phase A; the merge applies them in partition order and then
// runs the release check, so cta.arrived/cta.liveWarps are never touched
// concurrently.
type ctaEvent struct {
	cta    *ctaState
	arrive bool // true: BAR arrival; false: warp exit
}

// smemEvent is one deferred shared-memory store (CTAs can span partitions,
// so shared memory commits at the barrier exactly like global memory).
type smemEvent struct {
	cta  *ctaState
	addr int32
	val  uint32
}

// partition is one scheduler's slice of the machine: the warps it owns, its
// share of the issue bandwidth, its statistics deltas, and its deferred
// memory and CTA-event logs. During phase A a partition touches nothing
// outside itself except read-only shared state.
type partition struct {
	m      *machine
	idx    int
	warps  []*warpState
	tokens [10]float64

	// Per-round outputs, consumed by the barrier. memc carries the
	// memory-hierarchy level (memmodel.Level) the nearest-to-ready warp's
	// dependence stall waits on, 0 when the blocking producer was not a
	// hierarchy load (always 0 with MemModel off).
	issued  int
	wake    int64
	reason  stallReason
	class   isa.Class
	memc    uint8
	err     error
	retired int
	trapped bool

	// Deferred memory state: wlog (global) and slog (shared) are the
	// program-order store logs, drained at every barrier. They double as the
	// overlay this partition's own loads consult, so intra-partition
	// read-after-write within a round sees the round's stores: the logs hold
	// at most IssuePerSched instructions' worth of lanes, so a guarded
	// backward scan beats any map.
	wlog []memEvent
	slog []smemEvent
	// Deferred barrier arrivals and warp exits (see ctaEvent).
	events []ctaEvent
	// mlog is the deferred memory-hierarchy transaction log (armed MemModel
	// only; see memhier.go). loggedLoad flags that exec just logged an LDG,
	// telling issue() to park the destination on the memPending sentinel
	// instead of the flat LatGMem scoreboard update.
	mlog       []memReq
	loggedLoad bool

	// Cumulative statistics, folded into Stats by finalize().
	instrs   int64
	perClass [10]int64
	perCat   [5]int64

	stallDeps, stallThrottle, stallBarrier, stallNoWarp int64

	// parks counts ATOM parkings (folded into LaunchProf when armed; the
	// unconditional increment on the rare ATOM path is cheaper than a branch).
	parks int64

	// unknownClass counts timing lookups that hit the unknown-class fallback
	// (see Config.latency). Partition-local so phase-A counting stays
	// race-free; finalize folds it into Stats.UnknownClassOps.
	unknownClass int64

	// fr is this partition's flight-recorder ring (nil unless GPU.Flight is
	// armed). Partition-local single-writer during phase A, so recording
	// does not pin the launch in-order.
	fr *simprof.Ring
}

// step runs one round of this partition: issue up to IssuePerSched
// instructions, recording the stall profile when nothing issues. A stall
// counter bumps only when the partition issued nothing the whole round —
// one bump per scheduler per fully-idle-scheduler round, which is what the
// Verify invariant reconciles against the CPI partition.
func (p *partition) step() {
	p.issued = 0
	slots := p.m.cfg.IssuePerSched
	if slots < 1 {
		slots = 1
	}
	for slot := 0; slot < slots; slot++ {
		w, wake, reason, cl, memc := p.pick()
		if w == nil {
			if slot == 0 {
				p.wake, p.reason, p.class, p.memc = wake, reason, cl, memc
			}
			break
		}
		if err := p.issue(w); err != nil {
			p.err = err
			return
		}
		p.issued++
	}
	if p.issued == 0 {
		switch p.reason {
		case stallDeps:
			p.stallDeps++
		case stallThrottle:
			p.stallThrottle++
		case stallBarrier:
			p.stallBarrier++
		default:
			p.stallNoWarp++
		}
		if p.fr != nil {
			p.fr.Add(simprof.Decision{Cycle: p.m.cycle, Warp: -1, PC: -1,
				Kind: simprof.KindStall, Reason: uint8(p.reason), Aux: p.wake})
		}
	}
}

// pick scans the partition's warps round-robin for one that can issue; when
// none can, it returns the earliest wake time, the blocking reason of the
// nearest-to-ready warp, the pipe class that reason attributes to, and the
// memory-hierarchy level when that reason is a hierarchy-load dependence.
func (p *partition) pick() (*warpState, int64, stallReason, isa.Class, uint8) {
	minWake := farFuture
	reason := stallNoWarp
	class := isa.ClassFxP
	memc := uint8(0)
	n := len(p.warps)
	if n == 0 {
		return nil, minWake, reason, class, memc
	}
	start := int(p.m.cycle) % n
	for i := 0; i < n; i++ {
		w := p.warps[(start+i)%n]
		if w.done || w.atomHold {
			continue
		}
		ready, wake, r, cl, mc := p.warpReady(w)
		if ready {
			return w, 0, stallNone, cl, 0
		}
		if wake < minWake || reason == stallNoWarp {
			minWake = wake
			reason = r
			class = cl
			memc = mc
		}
	}
	return nil, minWake, reason, class, memc
}

// warpReady checks scoreboard and structural constraints for the warp's next
// instruction. On the fast path a previous scan's verdict is served from the
// warp's wake cache while it provably still holds; the reference path
// (Config.Reference) always rescans. Both return identical values: a cached
// dependence/barrier wake moves only when the warp itself issues or its
// barrier releases, and both events clear the cache. The depsReady sentinel
// caches the opposite verdict — operands satisfied, class known — leaving
// only the (uncacheable) token-bucket check, which is what makes repeated
// scans of a throttled partition cheap.
func (p *partition) warpReady(w *warpState) (bool, int64, stallReason, isa.Class, uint8) {
	if !p.m.cfg.Reference {
		if w.cacheWake > p.m.cycle {
			return false, w.cacheWake, w.cacheReason, isa.Class(w.cacheClass), w.cacheMem
		}
		if w.cacheWake == depsReady {
			cl := isa.Class(w.cacheClass)
			if p.tokens[cl] < 1 {
				need := (1 - p.tokens[cl]) / p.m.prate[cl]
				return false, p.m.cycle + int64(need) + 1, stallThrottle, cl, 0
			}
			return true, 0, stallNone, cl, 0
		}
	}
	return p.warpReadyFull(w)
}

// warpReadyFull is the full scan. The returned class attributes a stall: for
// dependence stalls it is the pipe class of the producer whose result the
// warp waits on longest (plus, when that producer was a hierarchy load, the
// memory level that bounded it); for throttle stalls, the saturated pipe.
func (p *partition) warpReadyFull(w *warpState) (bool, int64, stallReason, isa.Class, uint8) {
	m := p.m
	if w.atBarrier {
		// Released by the last arrival, which also clears the cache.
		if !m.cfg.Reference {
			w.cacheWake = farFuture
			w.cacheReason = stallBarrier
			w.cacheClass = uint8(isa.ClassControl)
			w.cacheMem = 0
		}
		return false, farFuture, stallBarrier, isa.ClassControl, 0
	}
	in := &m.k.Code[w.top().pc]
	wake := m.cycle
	blockCl := isa.ClassFxP
	// The memory level of the blocking producer is resolved once after the
	// scan (regMem[blockReg]); tracking the register instead of loading
	// regMem per update keeps the flat-latency scan at its seed cost.
	blockReg := isa.RZ

	dep := func(r isa.Reg, wide bool) {
		if r == isa.RZ {
			return
		}
		if t := w.regReady[r]; t > wake {
			wake = t
			blockCl = isa.Class(w.regClass[r])
			blockReg = r
		}
		if wide {
			if t := w.regReady[r+1]; t > wake {
				wake = t
				blockCl = isa.Class(w.regClass[r+1])
				blockReg = r + 1
			}
		}
	}
	for si, src := range in.Src {
		if si == 1 && in.HasImm {
			continue
		}
		wide := false
		switch in.Op {
		case isa.DADD, isa.DSUB, isa.DMUL:
			wide = si < 2
		case isa.DFMA:
			wide = true
		case isa.IMAD:
			wide = in.Wide && si == 2
		}
		dep(src, wide)
	}
	if in.GuardPred >= 0 && in.GuardPred < isa.PT {
		if t := w.predReady[in.GuardPred]; t > wake {
			wake = t
			blockCl = isa.Class(w.predClass[in.GuardPred])
			blockReg = isa.RZ // predicates never come from the hierarchy
		}
	}
	if wake > m.cycle {
		var blockMem uint8
		if blockReg != isa.RZ {
			blockMem = w.regMem[blockReg]
		}
		if !m.cfg.Reference {
			w.cacheWake = wake
			w.cacheReason = stallDeps
			w.cacheClass = uint8(blockCl)
			w.cacheMem = blockMem
		}
		return false, wake, stallDeps, blockCl, blockMem
	}
	cl := in.Op.Class()
	if !m.cfg.Reference {
		// Operands satisfied: they stay satisfied until the warp issues, so
		// only the token check remains on future scans.
		w.cacheWake = depsReady
		w.cacheClass = uint8(cl)
	}
	if p.tokens[cl] < 1 {
		// Throttle wakes move with every refill, so they are never cached.
		need := (1 - p.tokens[cl]) / m.prate[cl]
		return false, m.cycle + int64(need) + 1, stallThrottle, cl, 0
	}
	return true, 0, stallNone, cl, 0
}

// issue consumes a token, executes the instruction functionally, and
// updates the scoreboard.
func (p *partition) issue(w *warpState) error {
	m := p.m
	in := &m.k.Code[w.top().pc]
	cl := in.Op.Class()
	p.tokens[cl]--
	p.instrs++
	p.perClass[cl]++
	p.perCat[in.Cat]++
	if m.inOrder {
		m.dyn++
	}
	w.cacheWake = 0
	if p.fr != nil {
		p.fr.Add(simprof.Decision{Cycle: m.cycle, Warp: int32(w.gid),
			PC: w.top().pc, Kind: simprof.KindIssue})
	}

	if err := p.exec(w, in); err != nil {
		return err
	}

	// Scoreboard: the destination becomes readable after the pipe latency;
	// WAW writes merge to the max (both must land before a read). A logged
	// hierarchy load instead parks its destination on the memPending
	// sentinel — serviceMem resolves it to the real fill time at this
	// round's barrier, merging against the pre-sentinel ready time kept in
	// the request (LDG destinations are never register pairs).
	if p.loggedLoad {
		p.loggedLoad = false
		if in.WritesReg() {
			req := &p.mlog[len(p.mlog)-1]
			req.dst = in.Dst
			req.prev = w.regReady[in.Dst]
			if req.prev == memPending {
				// An older same-round load to this destination still holds
				// the sentinel; its service (earlier in mlog) concretizes
				// regReady before this request reads it, so prev is unused.
				req.prev = 0
			}
			w.regReady[in.Dst] = memPending
			w.regClass[in.Dst] = uint8(cl)
		}
	} else if in.WritesReg() {
		// The sentinel checks and regMem clears live off the common path:
		// memPending is above any real completion time (so t > cur already
		// fails on it), and with the hierarchy off regMem is all-zero by
		// construction — the flat path pays only the nil check.
		t := m.cycle + p.latencyOf(cl)
		if cur := w.regReady[in.Dst]; t > cur {
			w.regReady[in.Dst] = t
		} else if cur == memPending {
			// WAW against a same-round in-flight load: fold this producer's
			// completion into the pending request so serviceMem's max keeps
			// it (overwriting the sentinel would lose the load's fill).
			p.bumpPendingPrev(w, in.Dst, t)
		}
		w.regClass[in.Dst] = uint8(cl)
		if m.mh != nil {
			w.regMem[in.Dst] = 0
		}
		if in.Is64Dst() {
			if cur := w.regReady[in.Dst+1]; t > cur {
				w.regReady[in.Dst+1] = t
			} else if cur == memPending {
				p.bumpPendingPrev(w, in.Dst+1, t)
			}
			w.regClass[in.Dst+1] = uint8(cl)
			if m.mh != nil {
				w.regMem[in.Dst+1] = 0
			}
		}
	}
	if (in.Op == isa.ISETP || in.Op == isa.FSETP) && in.DstPred >= 0 && in.DstPred < isa.PT {
		// The predicate lands with the producing pipe's latency: FSETP is a
		// ClassFP32 op, so its comparison takes the FP32 pipe's depth, not
		// the integer pipe's.
		w.predReady[in.DstPred] = m.cycle + p.latencyOf(cl)
		w.predClass[in.DstPred] = uint8(cl)
	}
	return nil
}

// latencyOf is issue's latency lookup: an array load off the table
// initPartitions resolved, with the unknown-class fallback counted
// partition-locally (phase A runs partitions concurrently) — it surfaces
// as Stats.UnknownClassOps, the sm.unknown_class metric, and a Verify
// invariant violation at launch end.
func (p *partition) latencyOf(cl isa.Class) int64 {
	if int(cl) < len(p.m.platency) {
		if l := p.m.platency[cl]; l != 0 {
			return l
		}
	}
	p.unknownClass++
	return 1
}

// bumpPendingPrev folds a non-load producer's completion time into the
// in-flight load request holding reg r's memPending sentinel (the newest
// such request wins — it is the one whose service last touches the
// register).
func (p *partition) bumpPendingPrev(w *warpState, r isa.Reg, t int64) {
	for i := len(p.mlog) - 1; i >= 0; i-- {
		req := &p.mlog[i]
		if !req.store && req.w == w && req.dst == r {
			if t > req.prev {
				req.prev = t
			}
			return
		}
	}
}

// refill adds delta cycles of this partition's bandwidth share to every
// token bucket, called at the barrier so all partitions see the same global
// time regardless of worker count.
func (p *partition) refill(delta int64) {
	m := p.m
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		p.tokens[cl] += m.prate[cl] * float64(delta)
		if p.tokens[cl] > m.tokCap {
			p.tokens[cl] = m.tokCap
		}
	}
}

// commitMem applies this partition's deferred global-memory log in program
// order: plain stores land their final values, atomics replay their
// read-modify-write against live memory (see mergeRound for the
// partition-order guarantee).
func (p *partition) commitMem() {
	m := p.m
	for i := range p.wlog {
		ev := &p.wlog[i]
		if ev.atom == nil {
			m.g.Mem[ev.addr] = ev.val
			continue
		}
		m.replayAtom(ev.atom)
	}
	p.wlog = p.wlog[:0]
}

// commitShared applies this partition's deferred shared-memory stores in
// program order.
func (p *partition) commitShared() {
	for i := range p.slog {
		ev := &p.slog[i]
		ev.cta.shared[ev.addr] = ev.val
	}
	p.slog = p.slog[:0]
}

// lookupW finds the latest same-round deferred store to a global address
// (callers guard on len(p.wlog) > 0). Pending atomics are skipped: their
// value does not exist until the barrier replay.
func (p *partition) lookupW(addr int32) (uint32, bool) {
	for i := len(p.wlog) - 1; i >= 0; i-- {
		ev := &p.wlog[i]
		if ev.atom == nil && ev.addr == addr {
			return ev.val, true
		}
	}
	return 0, false
}

// lookupS finds the latest same-round deferred store to a shared-memory
// address of one CTA (callers guard on len(p.slog) > 0).
func (p *partition) lookupS(cta *ctaState, addr int32) (uint32, bool) {
	for i := len(p.slog) - 1; i >= 0; i-- {
		ev := &p.slog[i]
		if ev.cta == cta && ev.addr == addr {
			return ev.val, true
		}
	}
	return 0, false
}

// replayAtom performs a captured ATOM's read-modify-write and destination
// write-back. The issuing warp was parked (atomHold) for the rest of its
// round, so its registers are exactly as they were at issue time and the
// old-value write-back cannot be reordered against younger instructions.
func (m *machine) replayAtom(op *atomOp) {
	w, in := op.w, op.in
	w.atomHold = false
	fp := m.g.Fault
	for lane := 0; lane < isa.WarpSize; lane++ {
		if op.mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := op.addr[lane]
		old := m.g.Mem[addr]
		val := op.val[lane]
		switch in.Mod {
		case isa.OpAdd:
			m.g.Mem[addr] = old + val
		case isa.OpMin:
			if int32(val) < int32(old) {
				m.g.Mem[addr] = val
			}
		case isa.OpMax:
			if int32(val) > int32(old) {
				m.g.Mem[addr] = val
			}
		case isa.OpExch:
			m.g.Mem[addr] = val
		case isa.OpCAS:
			if old == op.cmp[lane] {
				m.g.Mem[addr] = val
			}
		}
		if m.g.Trace != nil {
			m.traceLane(w, in, lane, uint64(old))
		}
		if in.Dst != isa.RZ {
			value := old
			if op.inject && lane == fp.Lane {
				value ^= fp.BitMask
				fp.Applied = true
				m.faultCycle = m.cycle
			}
			m.writeLane(w, in, int(in.Dst), lane, value, old)
		}
	}
	if op.inject && in.Dst == isa.RZ {
		fp.Applied = true // fault landed in a discarded result
		m.faultCycle = m.cycle
	}
}
