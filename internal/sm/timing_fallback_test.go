package sm

import (
	"strings"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
)

// The latency/rate tables used to default an unknown isa.Class to 1 cycle /
// ThrCtrl silently, so a misclassified instruction got plausible-looking
// timing and the sweep numbers drifted without any signal. The fallback
// still exists (the simulator must not crash mid-launch), but it now
// reports: the lookups return ok=false, the launch counts the fallbacks in
// Stats.UnknownClassOps, and Config.Verify turns any nonzero count into an
// invariant violation.

// TestLatencyRateTableCoversISA: every class of the ISA's vocabulary must
// resolve without the fallback, with positive timing — including
// ClassControl, which the pre-fix default handled by accident and now has
// an explicit case (same values, so timing is bit-identical to the seed).
func TestLatencyRateTableCoversISA(t *testing.T) {
	cfg := DefaultConfig()
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		l, ok := cfg.latency(cl)
		if !ok {
			t.Errorf("latency(%v) took the unknown-class fallback", cl)
		}
		if l < 1 {
			t.Errorf("latency(%v) = %d, want >= 1", cl, l)
		}
		r, ok := cfg.rate(cl)
		if !ok {
			t.Errorf("rate(%v) took the unknown-class fallback", cl)
		}
		if r <= 0 {
			t.Errorf("rate(%v) = %v, want > 0", cl, r)
		}
	}
	if l, ok := cfg.latency(isa.ClassControl); !ok || l != 1 {
		t.Errorf("latency(control) = %d, %v; want 1, true (seed value)", l, ok)
	}
	if r, ok := cfg.rate(isa.ClassControl); !ok || r != cfg.ThrCtrl {
		t.Errorf("rate(control) = %v, %v; want ThrCtrl, true (seed value)", r, ok)
	}
}

// TestLatencyRateUnknownClassFlagged: a class outside the vocabulary still
// gets the old fallback values but is flagged, and the partition-local
// lookup counts it.
func TestLatencyRateUnknownClassFlagged(t *testing.T) {
	cfg := DefaultConfig()
	bogus := isa.ClassSpecial + 17
	if l, ok := cfg.latency(bogus); ok || l != 1 {
		t.Errorf("latency(bogus) = %d, %v; want 1, false", l, ok)
	}
	if r, ok := cfg.rate(bogus); ok || r != cfg.ThrCtrl {
		t.Errorf("rate(bogus) = %v, %v; want ThrCtrl, false", r, ok)
	}

	m := &machine{cfg: &cfg}
	m.initPartitions()
	p := m.parts[0]
	if got, _ := cfg.latency(isa.ClassFP32); p.latencyOf(isa.ClassFP32) != got {
		t.Errorf("latencyOf(fp32) disagrees with the table")
	}
	if p.unknownClass != 0 {
		t.Fatalf("known-class lookup bumped the fallback counter to %d", p.unknownClass)
	}
	if got := p.latencyOf(bogus); got != 1 {
		t.Errorf("latencyOf(bogus) = %d, want fallback 1", got)
	}
	if p.unknownClass != 1 {
		t.Fatalf("unknownClass = %d after one fallback, want 1", p.unknownClass)
	}
}

// TestVerifyFlagsUnknownClass: checkLaunchEnd must indict a launch whose
// stats carry unknown-class fallbacks.
func TestVerifyFlagsUnknownClass(t *testing.T) {
	cfg := DefaultConfig()
	m := &machine{cfg: &cfg, k: &isa.Kernel{Name: "synthetic"}, stats: &Stats{}}
	m.checkLaunchEnd()
	if len(m.violations) != 0 {
		t.Fatalf("clean synthetic stats violated: %v", m.violations)
	}
	m.stats.UnknownClassOps = 3
	m.checkLaunchEnd()
	if len(m.violations) != 1 || !strings.Contains(m.violations[0], "unknown-class") {
		t.Fatalf("unknown-class ops not flagged: %v", m.violations)
	}
}

// TestVerifyFlagsFlatMemStalls: a flat-latency launch can never charge
// memory-hierarchy stall cycles; checkLaunchEnd guards the partition.
func TestVerifyFlagsFlatMemStalls(t *testing.T) {
	cfg := DefaultConfig()
	m := &machine{cfg: &cfg, k: &isa.Kernel{Name: "synthetic"}, stats: &Stats{}}
	m.stats.StallCyclesMemDRAM = 7
	m.stats.Cycles = 7 // keep the issue+stall partition consistent
	m.checkLaunchEnd()
	if len(m.violations) != 1 || !strings.Contains(m.violations[0], "memory-hierarchy") {
		t.Fatalf("flat-path mem stalls not flagged: %v", m.violations)
	}
}

// oobKernel builds a single-warp kernel whose first active lane accesses
// the given out-of-range offset through op.
func oobKernel(t *testing.T, op isa.Opcode, off int32) *isa.Kernel {
	t.Helper()
	a := compiler.NewAsm("oob")
	r0, r1 := isa.Reg(0), isa.Reg(1)
	a.MovI(r0, 0)
	switch op {
	case isa.LDS:
		a.Lds(r1, r0, off)
	case isa.LDG:
		a.Ldg(r1, r0, off)
	case isa.STS:
		a.Sts(r0, off, r0)
	case isa.STG:
		a.Stg(r0, off, r0)
	default:
		t.Fatalf("oobKernel: unsupported op %v", op)
	}
	a.Exit()
	return a.MustBuild(1, 32, 8)
}

// TestOOBDiagnosticsUnified: every out-of-bounds path — the fused
// vectorized loops, the generic scalar path (forced via the ECC register
// file), and the store path — must report the same diagnostic shape:
// kernel, opcode, address, faulting lane, and address space. The LDS/STS
// variants used to omit the lane that LDG reported; this pins the unified
// message on both execution paths.
func TestOOBDiagnosticsUnified(t *testing.T) {
	cases := []struct {
		op    isa.Opcode
		off   int32
		space string
	}{
		{isa.LDS, 100, "shared"}, // sharedWords = 8
		{isa.STS, 100, "shared"},
		{isa.LDG, 1 << 20, "global"}, // memWords = 256
		{isa.STG, 1 << 20, "global"},
	}
	for _, tc := range cases {
		for _, ecc := range []bool{false, true} { // false: fused fast path; true: generic scalar path
			k := oobKernel(t, tc.op, tc.off)
			cfg := DefaultConfig()
			cfg.ECC = ecc
			g := NewGPU(cfg, 256)
			_, err := g.Launch(k)
			if err == nil {
				t.Fatalf("%v ecc=%v: out-of-bounds access launched cleanly", tc.op, ecc)
			}
			msg := err.Error()
			for _, frag := range []string{
				"kernel oob", tc.op.String(), "(lane 0, " + tc.space + " memory)",
			} {
				if !strings.Contains(msg, frag) {
					t.Errorf("%v ecc=%v: diagnostic %q missing %q", tc.op, ecc, msg, frag)
				}
			}
		}
	}
}

// TestOOBDiagnosticsIdenticalAcrossPaths: the two execution paths must
// produce byte-identical messages, not merely similar ones.
func TestOOBDiagnosticsIdenticalAcrossPaths(t *testing.T) {
	for _, op := range []isa.Opcode{isa.LDS, isa.LDG} {
		var msgs [2]string
		for i, ecc := range []bool{false, true} {
			k := oobKernel(t, op, 1<<20)
			cfg := DefaultConfig()
			cfg.ECC = ecc
			g := NewGPU(cfg, 256)
			_, err := g.Launch(k)
			if err == nil {
				t.Fatalf("%v ecc=%v: no error", op, ecc)
			}
			msgs[i] = err.Error()
		}
		if msgs[0] != msgs[1] {
			t.Errorf("%v: fast path %q != scalar path %q", op, msgs[0], msgs[1])
		}
	}
}
