package sm_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

// TestLaunchContextPreCancelled: a cancelled context stops the launch at
// the first scheduler round and reports partial stats.
func TestLaunchContextPreCancelled(t *testing.T) {
	w, err := workloads.ByName("lavaMD")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := w.NewGPU(sm.DefaultConfig()).LaunchContext(ctx, w.Kernel)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st == nil {
		t.Fatal("no partial stats on cancellation")
	}
	full, err := w.NewGPU(sm.DefaultConfig()).Launch(w.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles >= full.Cycles {
		t.Errorf("cancelled run simulated %d cycles, full run %d", st.Cycles, full.Cycles)
	}
}

// TestLaunchContextTimeout: a deadline mid-simulation returns partial stats
// with DeadlineExceeded wrapped.
func TestLaunchContextTimeout(t *testing.T) {
	w, err := workloads.ByName("lavaMD")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	st, err := w.NewGPU(sm.DefaultConfig()).LaunchContext(ctx, w.Kernel)
	if err == nil {
		t.Skip("machine simulated lavaMD inside 1µs")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if st == nil {
		t.Fatal("no partial stats on timeout")
	}
}

// TestLaunchContextBackgroundMatchesLaunch: threading a context does not
// perturb the timing model.
func TestLaunchContextBackgroundMatchesLaunch(t *testing.T) {
	w, err := workloads.ByName("pathf")
	if err != nil {
		t.Fatal(err)
	}
	a, err := w.NewGPU(sm.DefaultConfig()).Launch(w.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.NewGPU(sm.DefaultConfig()).LaunchContext(context.Background(), w.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.DynWarpInstrs != b.DynWarpInstrs {
		t.Errorf("Launch %d cyc / %d instrs vs LaunchContext %d / %d",
			a.Cycles, a.DynWarpInstrs, b.Cycles, b.DynWarpInstrs)
	}
}
