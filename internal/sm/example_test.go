package sm_test

import (
	"fmt"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
	"swapcodes/internal/sm"
)

// A protected kernel runs on the simulated SM; the SwapCodes register file
// catches an injected pipeline error as a DUE on the consuming read.
func ExampleGPU_Launch() {
	a := compiler.NewAsm("square")
	a.S2R(0, isa.SRTid)
	a.IMul(1, 0, 0)
	a.Stg(0, 0, 1)
	a.Exit()
	k := compiler.MustApply(a.MustBuild(1, 32, 0), compiler.SwapECC)

	cfg := sm.DefaultConfig()
	cfg.ECC = true
	g := sm.NewGPU(cfg, 64)
	g.Fault = &sm.FaultPlan{TargetDynInstr: 1, Lane: 5, BitMask: 1 << 3} // hit the IMUL
	st, _ := g.Launch(k)
	fmt.Println("fault applied:", g.Fault.Applied)
	fmt.Println("pipeline DUEs:", st.PipelineDUEs)
	fmt.Println("lane 4 result:", g.Int32(4)) // unaffected lane
	// Output:
	// fault applied: true
	// pipeline DUEs: 1
	// lane 4 result: 16
}

// Checkpoint/restart recovery after a contained DUE (Section VI).
func ExampleGPU_Snapshot() {
	a := compiler.NewAsm("inc")
	a.S2R(0, isa.SRTid)
	a.IAddI(1, 0, 1)
	a.Stg(0, 0, 1)
	a.Exit()
	k := compiler.MustApply(a.MustBuild(1, 32, 0), compiler.SwapECC)

	cfg := sm.DefaultConfig()
	cfg.ECC = true
	cfg.HaltOnDUE = true
	g := sm.NewGPU(cfg, 64)
	snap := g.Snapshot()

	g.Fault = &sm.FaultPlan{TargetDynInstr: 1, Lane: 0, BitMask: 1}
	_, err := g.Launch(k)
	fmt.Println("first run halted:", err != nil)

	g.Restore(snap)
	g.Fault = nil
	_, err = g.Launch(k)
	fmt.Println("recovered run ok:", err == nil, "out[7] =", g.Int32(7))
	// Output:
	// first run halted: true
	// recovered run ok: true out[7] = 8
}
