package sm

// Opt-in memory-hierarchy timing tier (Config.MemModel = "sectored").
//
// The hierarchy replaces the flat LatGMem completion time of global loads
// with one computed by internal/memmodel (sectored L1 + bounded MSHRs,
// banked L2, DRAM bandwidth/row locality) — timing only, never data. The
// integration preserves the §13 determinism contract: during phase A a
// partition merely LOGS each LDG/STG's coalesced sector set into its
// partition-local mlog and marks the destination register with the
// memPending sentinel; the single-threaded merge barrier then presents the
// logs to the hierarchy in fixed partition order (program order within a
// partition) and finalizes the scoreboard. The hierarchy's mutable state is
// therefore touched only between phases, so results stay bit-identical at
// every worker count and phase A stays parallel with the model armed.
//
// Stall attribution: serviceMem records the level that bounded each load
// (regMem, parallel to regClass); a dependence stall on a pending-load
// register is then charged to mem.l1/l2/dram/mshr instead of the generic
// deps component, threading through the wake cache, the partition's
// idle-round profile, and chargeIdle. The off path keeps regMem all-zero,
// which makes every new branch fall through to the seed behavior.

import (
	"fmt"

	"swapcodes/internal/isa"
	"swapcodes/internal/memmodel"
)

// memPending is the scoreboard sentinel for "written by a hierarchy load
// whose completion time is not known until the merge". It is larger than
// farFuture so a same-round dependent scan parks rather than issues; every
// sentinel is resolved by serviceMem in the same round's barrier, so no
// idle-skip or retire decision ever observes one.
const memPending = farFuture + 1

// memReq is one deferred warp-level memory transaction: the deduplicated
// sector set of an LDG or STG, logged during phase A and serviced at the
// merge. For loads, dst/prev carry the scoreboard finalization state (prev
// is the destination's pre-sentinel ready time, so a WAW hazard against an
// older in-flight producer still merges to the max).
type memReq struct {
	w       *warpState
	dst     isa.Reg
	prev    int64
	store   bool
	nsec    int
	sectors [isa.WarpSize]int32
}

// armMemHier validates Config.MemModel and instantiates the hierarchy.
func (m *machine) armMemHier() error {
	switch m.cfg.MemModel {
	case "", "off":
		return nil
	case "sectored":
		m.mh = memmodel.New(memmodel.DefaultConfig())
		return nil
	default:
		return fmt.Errorf("sm: unknown MemModel %q (valid: off, sectored)", m.cfg.MemModel)
	}
}

// logMem coalesces one LDG/STG's active-lane addresses into sectors and
// appends the transaction to the partition's deferred log. Called from exec
// BEFORE the instruction dispatches, because an LDG's destination may alias
// its address register. Addresses repeat exec's arithmetic exactly; an
// out-of-bounds address is logged as-is — exec reports the error right
// after and the launch aborts before the log is ever serviced.
func (p *partition) logMem(w *warpState, in *isa.Instr, mask uint32) {
	mh := p.m.mh
	req := memReq{w: w, dst: isa.RZ, store: in.Op == isa.STG}
	a := w.laneSlice(in.Src[0])
	for l := 0; l < isa.WarpSize; l++ {
		if mask&(1<<uint(l)) == 0 {
			continue
		}
		s := mh.SectorOf(int32(int(int32(a[l])) + int(in.Imm)))
		dup := false
		for _, x := range req.sectors[:req.nsec] {
			if x == s {
				dup = true
				break
			}
		}
		if !dup {
			req.sectors[req.nsec] = s
			req.nsec++
		}
	}
	p.mlog = append(p.mlog, req)
	p.loggedLoad = in.Op == isa.LDG
}

// serviceMem drains every partition's deferred memory log through the
// hierarchy — the only place hierarchy state advances. Runs on the barrier
// thread right after the store commits, before CTA events and retirement,
// so a warp that issued its load and EXITed in the same round retires with
// a concrete scoreboard. Partition order then program order fixes the
// service order; all of a round's transactions share the round's cycle as
// their issue time.
func (m *machine) serviceMem() {
	for _, p := range m.parts {
		if len(p.mlog) == 0 {
			continue
		}
		for i := range p.mlog {
			req := &p.mlog[i]
			if req.store {
				m.mh.AccessStore(m.cycle, req.sectors[:req.nsec])
				continue
			}
			fill, lvl := m.mh.AccessLoad(m.cycle, req.sectors[:req.nsec])
			if req.dst == isa.RZ {
				continue // discarded result: traffic counted, nothing to wake
			}
			w := req.w
			base := w.regReady[req.dst]
			if base == memPending {
				base = req.prev
			}
			if fill > base {
				base = fill
			}
			w.regReady[req.dst] = base
			w.regMem[req.dst] = uint8(lvl)
			// The issuing warp may have cached a wake against the sentinel
			// in this same round; the concrete time invalidates it.
			w.cacheWake = 0
		}
		p.mlog = p.mlog[:0]
	}
}
