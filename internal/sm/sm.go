// Package sm simulates a GPU streaming multiprocessor executing the SASS-
// like ISA: SIMT warps with a reconvergence stack, a scoreboard without
// register bypassing (the paper's Section III-A assumption), per-class issue
// throughput and latency, occupancy limited by registers per thread, CTA
// barriers, and a global/shared memory hierarchy. The simulator is both
// functional (kernels compute real results) and timing (relative cycle
// counts drive the Figure 12/15/16 performance reproductions).
//
// One simulated SM processes the entire grid in resident-CTA waves — the
// per-scheme slowdown ratios are what matter, and they are invariant to the
// SM count.
package sm

import (
	"context"
	"fmt"

	"swapcodes/internal/compiler"
	"swapcodes/internal/core"
	"swapcodes/internal/isa"
	"swapcodes/internal/memmodel"
	"swapcodes/internal/obs"
	"swapcodes/internal/obs/cpistack"
	"swapcodes/internal/obs/simprof"
)

// Config gives the SM's microarchitectural parameters. The defaults are
// Pascal-class (DESIGN.md Section 6).
type Config struct {
	// Schedulers is the number of warp schedulers.
	Schedulers int
	// IssuePerSched is the dual-issue width of each scheduler.
	IssuePerSched int
	// RegAllocGranule is the register-file allocation granularity per
	// thread (occupancy rounds registers/thread up to a multiple of this).
	RegAllocGranule int
	// MaxWarps is the resident warp limit.
	MaxWarps int
	// MaxCTAs is the resident CTA limit.
	MaxCTAs int
	// RegFileWords is the architectural register file capacity in 32-bit
	// words (registers/thread × threads resident must fit).
	RegFileWords int
	// SharedWords is the shared-memory capacity in words.
	SharedWords int

	// Per-class result latencies in cycles (producer issue to operand
	// readability; includes write-back since there is no bypass network).
	// LatGMem is an effective cache-inclusive global-load latency: Rodinia
	// working sets are largely L1/L2 resident on a P100, so the pure DRAM
	// figure would overstate latency-boundness.
	LatFxP, LatFP32, LatFP64, LatSFU, LatMove, LatSMem, LatGMem, LatSpecial int64
	// BypassSaving is subtracted from ALU-class latencies when modeling a
	// theoretical bypassed pipeline (the Section VI ablation). Zero by
	// default.
	BypassSaving int64

	// Per-class issue throughput in warp-instructions per cycle.
	ThrFxP, ThrFP32, ThrFP64, ThrSFU, ThrMove, ThrSMem, ThrGMem, ThrSpecial, ThrCtrl float64

	// Verify enables dynamic self-checks on the simulator's own invariants:
	// the CPI-stack partition must sum exactly to launch cycles, every
	// retiring warp must have drained its divergence stack and barriers,
	// and residency must never exceed the register-file/shared-memory/warp-
	// slot bounds the occupancy calculation promised. Violations are
	// reported as an *InvariantError from Launch. Off by default (the checks
	// cost a few percent on hot launches).
	Verify bool

	// Workers is the number of goroutines phase A of the round loop may use
	// (DESIGN.md Section 13): scheduler partitions are spread over
	// min(Workers, Schedulers) workers, each advancing its partitions
	// independently between barriers. 0 or 1 runs phase A on the launching
	// goroutine. Results are bit-identical at every worker count. Launches
	// that need the global in-order instruction stream (armed fault plans,
	// value tracing, observability recorders, the ECC register file) ignore
	// Workers and run phase A in-order.
	Workers int
	// Reference disables the warp wake cache, forcing a full scoreboard
	// rescan for every scheduling decision — the slow reference scheduler
	// that the differential tests compare the cached fast path against.
	Reference bool

	// MemModel selects the global-memory timing tier. "" or "off" keeps the
	// seed flat-latency path (every LDG completes in LatGMem cycles) and is
	// bit-identical to configurations that predate the field. "sectored"
	// arms the internal/memmodel hierarchy: per-warp sector coalescing, a
	// sectored L1 with a bounded MSHR file, a banked L2, and a DRAM
	// bandwidth/row-locality model, with per-level CPI-stall attribution
	// (mem.l1/l2/dram/mshr). The hierarchy is timing-only — functional
	// results never change — and it advances entirely inside the
	// deterministic merge barrier, so Workers parallelism is unaffected.
	MemModel string

	// MaxCycles aborts the launch with an error once the simulated cycle
	// count exceeds it (0 = unlimited). The differential verifier uses it
	// to bound runs of deliberately or accidentally miscompiled programs,
	// whose divergence from the baseline can include not terminating at
	// all; a deterministic cycle budget turns that hang into a reportable
	// failure, unlike a wall-clock timeout.
	MaxCycles int64

	// ECC enables the SwapCodes-protected register file (error-injection
	// studies and examples; adds bookkeeping cost).
	ECC bool
	// Org selects the register-file organization when ECC is on.
	Org core.Organization
	// HaltOnDUE stops the simulation at the first pipeline DUE.
	HaltOnDUE bool
}

// DefaultConfig returns the Pascal-class baseline configuration.
func DefaultConfig() Config {
	return Config{
		Schedulers:      4,
		IssuePerSched:   2,
		RegAllocGranule: 8,
		MaxWarps:        64,
		MaxCTAs:         32,
		RegFileWords:    65536,
		SharedWords:     24576,
		LatFxP:          6, LatFP32: 6, LatFP64: 8, LatSFU: 12,
		LatMove: 4, LatSMem: 24, LatGMem: 140, LatSpecial: 6,
		ThrFxP: 2, ThrFP32: 2, ThrFP64: 1, ThrSFU: 0.5,
		ThrMove: 2, ThrSMem: 1, ThrGMem: 0.5, ThrSpecial: 1, ThrCtrl: 4,
		Org: core.OrgSECDEDDP,
	}
}

// latency returns the result latency for a class. The second result is
// false for a class outside the ISA's vocabulary: such an instruction used
// to silently get 1-cycle (fastest-path) timing, which is exactly the kind
// of misclassification a timing model must never paper over — callers count
// it (Stats.UnknownClassOps, the sm.unknown_class metric) and Config.Verify
// turns it into an invariant violation. Control instructions are a real
// class with no register result; their nominal 1-cycle latency only feeds
// the maxLatency scoreboard horizon.
func (c *Config) latency(cl isa.Class) (int64, bool) {
	var l int64
	switch cl {
	case isa.ClassFxP:
		l = c.LatFxP
	case isa.ClassFP32:
		l = c.LatFP32
	case isa.ClassFP64:
		l = c.LatFP64
	case isa.ClassSFU:
		l = c.LatSFU
	case isa.ClassMove:
		l = c.LatMove
	case isa.ClassMemShared:
		l = c.LatSMem
	case isa.ClassMemGlobal:
		l = c.LatGMem
	case isa.ClassSpecial:
		l = c.LatSpecial
	case isa.ClassControl:
		return 1, true
	default:
		return 1, false
	}
	switch cl {
	case isa.ClassFxP, isa.ClassFP32, isa.ClassFP64, isa.ClassMove:
		l -= c.BypassSaving
		if l < 1 {
			l = 1
		}
	}
	return l, true
}

// rate returns the issue throughput for a class, with the same unknown-class
// contract as latency: the fallback rate keeps the simulation live, the
// false result makes the misclassification loud.
func (c *Config) rate(cl isa.Class) (float64, bool) {
	switch cl {
	case isa.ClassFxP:
		return c.ThrFxP, true
	case isa.ClassFP32:
		return c.ThrFP32, true
	case isa.ClassFP64:
		return c.ThrFP64, true
	case isa.ClassSFU:
		return c.ThrSFU, true
	case isa.ClassMove:
		return c.ThrMove, true
	case isa.ClassMemShared:
		return c.ThrSMem, true
	case isa.ClassMemGlobal:
		return c.ThrGMem, true
	case isa.ClassSpecial:
		return c.ThrSpecial, true
	case isa.ClassControl:
		return c.ThrCtrl, true
	default:
		return c.ThrCtrl, false
	}
}

// FaultPlan injects one transient pipeline error: when the global dynamic
// warp-instruction counter reaches TargetDynInstr and that instruction
// writes a register, the destination value of the chosen lane is XORed with
// BitMask before write-back (for wide results, BitMaskHi corrupts the high
// register). This models a single-event upset in the producing datapath.
type FaultPlan struct {
	TargetDynInstr int64
	Lane           int
	BitMask        uint32
	BitMaskHi      uint32
	// Applied reports whether the fault fired.
	Applied bool
}

// Stats aggregates one launch.
type Stats struct {
	Cycles           int64
	DynWarpInstrs    int64
	PerClass         map[isa.Class]int64
	PerCat           map[isa.Category]int64
	MaxResidentWarps int
	// PipelineDUEs counts register reads flagged as pipeline errors by the
	// ECC decoder (SwapCodes detections).
	PipelineDUEs int64
	// StorageCorrections counts corrected storage errors.
	StorageCorrections int64
	// StorageDUEs counts detected-uncorrectable storage/unattributed events.
	StorageDUEs int64
	// Trapped reports a software-checking BPT trap fired (SW-Dup or
	// inter-thread detection).
	Trapped bool
	// Stall attribution: per scheduler slot that failed to issue, the
	// blocking reason of the nearest-to-ready warp. StallDeps counts
	// scoreboard (operand latency) stalls, StallThrottle execution-pipe
	// bandwidth stalls, StallBarrier barrier waits, and StallNoWarp slots
	// with no live warp assigned.
	StallDeps, StallThrottle, StallBarrier, StallNoWarp int64
	// Cycle-level stall attribution: cycles in which NO scheduler issued,
	// charged to the blocking reason of the SM's nearest-to-ready warp
	// (rounds where at least one slot issued are charged to IssueCycles).
	// Together the five stall fields and IssueCycles partition Cycles
	// exactly — the launch's CPI stack (see CPIStack) — which makes "where
	// did the slowdown go" a direct read.
	StallCyclesDeps, StallCyclesThrottle, StallCyclesBarrier, StallCyclesNoWarp int64
	// StallCyclesOccupancy charges idle cycles to occupancy capping:
	// dependence or warp-starvation idles that occurred while registers or
	// shared memory held residency below the SM's warp-slot limit with CTAs
	// still waiting — latency the denied warps could have covered.
	StallCyclesOccupancy int64
	// Memory-tier stall attribution (Config.MemModel armed; all zero on the
	// flat-latency path): dependence idles whose nearest-to-ready warp waits
	// on a hierarchy load, charged to the level that bounded that load's
	// completion — L1 hit service, L2 hit, DRAM, or the wait for a free
	// MSHR. These take precedence over the occupancy re-attribution: an
	// occupancy-capped memory-bound kernel still shows WHERE its latency
	// lives.
	StallCyclesMemL1, StallCyclesMemL2, StallCyclesMemDRAM, StallCyclesMemMSHR int64
	// UnknownClassOps counts timing lookups for an instruction class outside
	// the ISA's vocabulary (the latency/rate fallback). Always zero for
	// kernels built from real opcodes; nonzero means a misclassified
	// instruction got fallback timing (an invariant violation under Verify).
	UnknownClassOps int64
	// Mem carries the armed memory hierarchy's event counters (nil when
	// MemModel is off).
	Mem *memmodel.Stats
	// IssueCycles counts cycles in which at least one scheduler slot issued.
	IssueCycles int64
	// ResidentWarpLimit is the occupancy cap the launch ran under, in warps
	// (MaxResidentWarps can run below it on small grids).
	ResidentWarpLimit int
	// DepCyclesPerClass sub-attributes StallCyclesDeps to the pipe class of
	// the producer being waited on; ThrottleCyclesPerClass sub-attributes
	// StallCyclesThrottle to the saturated pipe.
	DepCyclesPerClass      map[isa.Class]int64
	ThrottleCyclesPerClass map[isa.Class]int64
}

// StallCycles returns the total fully-idle cycles across all reasons.
func (s *Stats) StallCycles() int64 {
	return s.StallCyclesDeps + s.StallCyclesThrottle + s.StallCyclesBarrier +
		s.StallCyclesNoWarp + s.StallCyclesOccupancy + s.MemStallCycles()
}

// MemStallCycles returns the total idle cycles attributed to the memory
// hierarchy (zero when MemModel is off).
func (s *Stats) MemStallCycles() int64 {
	return s.StallCyclesMemL1 + s.StallCyclesMemL2 + s.StallCyclesMemDRAM + s.StallCyclesMemMSHR
}

// CPIStack exports the launch's cycle partition in the attribution
// vocabulary of internal/obs/cpistack. kernel and scheme override the
// kernel's own stamps when non-empty (callers that launch un-stamped
// hand-built kernels can still label their stacks).
func (s *Stats) CPIStack(kernel, scheme string) *cpistack.Stack {
	st := &cpistack.Stack{
		Kernel:            kernel,
		Scheme:            scheme,
		Cycles:            s.Cycles,
		Instrs:            s.DynWarpInstrs,
		MaxResidentWarps:  s.MaxResidentWarps,
		ResidentWarpLimit: s.ResidentWarpLimit,
		Comp: map[string]int64{
			cpistack.Issue:     s.IssueCycles,
			cpistack.Deps:      s.StallCyclesDeps,
			cpistack.Throttle:  s.StallCyclesThrottle,
			cpistack.Barrier:   s.StallCyclesBarrier,
			cpistack.NoWarp:    s.StallCyclesNoWarp,
			cpistack.Occupancy: s.StallCyclesOccupancy,
			cpistack.MemL1:     s.StallCyclesMemL1,
			cpistack.MemL2:     s.StallCyclesMemL2,
			cpistack.MemDRAM:   s.StallCyclesMemDRAM,
			cpistack.MemMSHR:   s.StallCyclesMemMSHR,
		},
	}
	if len(s.DepCyclesPerClass) > 0 {
		st.DepsByClass = make(map[string]int64, len(s.DepCyclesPerClass))
		for cl, v := range s.DepCyclesPerClass {
			st.DepsByClass[cl.String()] = v
		}
	}
	if len(s.ThrottleCyclesPerClass) > 0 {
		st.ThrottleByClass = make(map[string]int64, len(s.ThrottleCyclesPerClass))
		for cl, v := range s.ThrottleCyclesPerClass {
			st.ThrottleByClass[cl.String()] = v
		}
	}
	return st
}

// IPC returns issued warp instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.DynWarpInstrs) / float64(s.Cycles)
}

// TraceFunc observes executed arithmetic, SASSI-style (Section IV-A): one
// call per value-producing lane with the operand values and result. FP64
// operands arrive as full 64-bit values; everything else in the low 32 bits.
type TraceFunc func(op isa.Opcode, wide bool, lane int, a, b, c, result uint64)

// GPU owns global memory and runs kernels.
type GPU struct {
	Cfg Config
	Mem []uint32
	// Fault, when non-nil, arms pipeline error injection for the next
	// launch.
	Fault *FaultPlan
	// Trace, when non-nil, receives per-lane operand/result values of
	// arithmetic instructions (the binary-instrumentation value tracer).
	Trace TraceFunc
	// Obs, when non-nil, records scheduling observability for every launch:
	// windowed occupancy/issue/stall counter samples, per-warp lifetime
	// spans, and scoreboard-wait and detection-latency histograms, emitted
	// as Chrome trace events with one simulated cycle per trace
	// microsecond. A nil Obs costs the cycle loop one branch per round
	// (see BenchmarkSMObsDisabled).
	Obs *obs.Recorder
	// Prof, when non-nil, collects per-partition parallelism telemetry for
	// every launch (DESIGN.md §14): per-partition issue/stall/deferred-log
	// profiles, round and idle-skip counts, and the phase-A vs merge wall
	// split. Unlike Obs, an armed Prof does NOT pin phase A to one goroutine
	// — profiling the parallel schedule is its purpose — and no wall-clock
	// value it records ever feeds back into simulated results, so Stats stay
	// bit-identical at every worker count with Prof on or off.
	Prof *simprof.LaunchProf
	// Flight, when non-nil, arms the flight recorder: each partition logs
	// its recent scheduler decisions into a fixed-size ring, and any launch
	// failure (invariant violation, deadlock, cycle-budget trip, panic)
	// stamps the recorder with enough identity (config, kernel, scheme,
	// cycle) to re-run the launch deterministically from the dumped bundle.
	// Like Prof, arming Flight does not force in-order execution.
	Flight *simprof.FlightRecorder
	// RetireHook, when non-nil, observes every retiring warp's final
	// architectural state: regs is laid out reg*WarpSize+lane and preds
	// holds P0..P7 lane masks. Both slices alias live simulator storage and
	// must be copied if retained past the call. The differential verifier
	// (internal/verify) uses this to compare end-of-kernel register state
	// between protected and baseline runs.
	RetireHook func(ctaID, warpInCTA int, regs []uint32, preds []uint32)
}

// NewGPU allocates a device with memWords words of global memory.
func NewGPU(cfg Config, memWords int) *GPU {
	return &GPU{Cfg: cfg, Mem: make([]uint32, memWords)}
}

// Float32 reads global memory as f32.
func (g *GPU) Float32(addr int) float32 { return f32FromBits(g.Mem[addr]) }

// SetFloat32 writes f32 to global memory.
func (g *GPU) SetFloat32(addr int, v float32) { g.Mem[addr] = f32Bits(v) }

// Float64 reads a two-word f64.
func (g *GPU) Float64(addr int) float64 {
	return f64FromBits(uint64(g.Mem[addr]) | uint64(g.Mem[addr+1])<<32)
}

// SetFloat64 writes a two-word f64.
func (g *GPU) SetFloat64(addr int, v float64) {
	b := f64Bits(v)
	g.Mem[addr] = uint32(b)
	g.Mem[addr+1] = uint32(b >> 32)
}

// Int32 reads global memory as a signed int.
func (g *GPU) Int32(addr int) int32 { return int32(g.Mem[addr]) }

// SetInt32 writes a signed int.
func (g *GPU) SetInt32(addr int, v int32) { g.Mem[addr] = uint32(v) }

// Snapshot captures device memory for checkpoint-based recovery — the
// paper's Section VI observation that Swap-ECC's strict error containment
// (detection at the register read, before any store) lets conventional
// checkpoint/restart recover from pipeline DUEs.
func (g *GPU) Snapshot() []uint32 {
	out := make([]uint32, len(g.Mem))
	copy(out, g.Mem)
	return out
}

// Restore rolls device memory back to a snapshot.
func (g *GPU) Restore(snap []uint32) {
	copy(g.Mem, snap)
}

// Launch runs a kernel to completion and returns its stats.
func (g *GPU) Launch(k *isa.Kernel) (*Stats, error) {
	return g.LaunchContext(context.Background(), k)
}

// LaunchContext runs a kernel under a context. On cancellation or timeout
// the simulation stops at the next scheduler round and returns the stats
// accumulated so far (cycles, instruction counts, stall attribution)
// together with an error wrapping the context's — partial results for
// early-stopped experiments.
func (g *GPU) LaunchContext(ctx context.Context, k *isa.Kernel) (*Stats, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	m := newMachine(g, k)
	if err := m.run(ctx); err != nil {
		if ctx.Err() != nil {
			return m.stats, err
		}
		return nil, err
	}
	return m.stats, nil
}

// RunScheme compiles the kernel under a scheme and launches it, a
// convenience for the experiment harness.
func (g *GPU) RunScheme(k *isa.Kernel, s compiler.Scheme) (*Stats, error) {
	t, err := compiler.Apply(k, s)
	if err != nil {
		return nil, err
	}
	return g.Launch(t)
}

// TrapError is returned when HaltOnDUE is unset but a BPT trap fires and
// execution cannot meaningfully continue.
type TrapError struct{ Kernel string }

// Error implements error.
func (e *TrapError) Error() string {
	return fmt.Sprintf("sm: kernel %s: BPT trap (software error detection fired)", e.Kernel)
}
