package sm

import (
	"sync"

	"swapcodes/internal/isa"
)

// Per-warp and per-CTA scratch (register files, scoreboards, SIMT stacks,
// shared memory) is recycled across CTAs and launches through sync.Pools:
// a big grid otherwise allocates tens of kilobytes per CTA wave, and the
// allocation+zeroing churn shows up directly in launch wall time. All gets
// and puts happen on the barrier thread (CTA launch and retire), so the
// pools see no concurrent access from phase A.

var warpPool = sync.Pool{New: func() any { return new(warpState) }}
var ctaPool = sync.Pool{New: func() any { return new(ctaState) }}

// getWarp returns a warpState with zeroed architectural and scoreboard
// state sized for numRegs registers. Callers fill in identity fields and
// the SIMT stack.
func getWarp(numRegs int) *warpState {
	w := warpPool.Get().(*warpState)
	nr := numRegs * isa.WarpSize
	if cap(w.regs) >= nr {
		w.regs = w.regs[:nr]
		clear(w.regs)
	} else {
		w.regs = make([]uint32, nr)
	}
	sb := numRegs + 2
	if cap(w.regReady) >= sb {
		w.regReady = w.regReady[:sb]
		clear(w.regReady)
	} else {
		w.regReady = make([]int64, sb)
	}
	if cap(w.regClass) >= sb {
		w.regClass = w.regClass[:sb]
		clear(w.regClass)
	} else {
		w.regClass = make([]uint8, sb)
	}
	if cap(w.regMem) >= sb {
		w.regMem = w.regMem[:sb]
		clear(w.regMem)
	} else {
		w.regMem = make([]uint8, sb)
	}
	w.preds = [8]uint32{}
	w.predReady = [8]int64{}
	w.predClass = [8]uint8{}
	w.atBarrier = false
	w.done = false
	w.atomHold = false
	w.cacheWake = 0
	w.cacheReason = stallNone
	w.cacheClass = 0
	w.cacheMem = 0
	w.rf = nil
	return w
}

// getCTA returns a ctaState with zeroed shared memory of sharedWords words.
func getCTA(id, sharedWords int) *ctaState {
	c := ctaPool.Get().(*ctaState)
	c.id = id
	if cap(c.shared) >= sharedWords {
		c.shared = c.shared[:sharedWords]
		clear(c.shared)
	} else {
		c.shared = make([]uint32, sharedWords)
	}
	c.warps = c.warps[:0]
	c.liveWarps = 0
	c.arrived = 0
	return c
}

// putCTA recycles a completed CTA and all of its warps. The caller
// guarantees nothing references them anymore (RetireHook consumers copy).
func putCTA(c *ctaState) {
	for _, w := range c.warps {
		w.cta = nil
		w.rf = nil
		warpPool.Put(w)
	}
	c.warps = c.warps[:0]
	ctaPool.Put(c)
}
