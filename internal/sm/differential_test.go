package sm

import (
	"math"
	"math/rand"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
)

// This file differential-tests the SIMT machine against an independent
// SCALAR interpreter: each thread executed sequentially, one at a time,
// with no warps, masks, reconvergence stacks, or schedulers. For race-free
// kernels (per-thread output slots, commutative atomics, no barriers or
// shuffles) the two execution models must produce identical memory, so any
// divergence-stack or masking bug in the machine shows up as a memory diff.

// scalarRun executes the kernel one thread at a time.
func scalarRun(t *testing.T, k *isa.Kernel, mem []uint32) {
	t.Helper()
	for cta := 0; cta < k.GridCTAs; cta++ {
		for tid := 0; tid < k.CTAThreads; tid++ {
			regs := make([]uint32, 256)
			var preds [8]bool
			pc := 0
			read := func(r isa.Reg) uint32 {
				if r == isa.RZ {
					return 0
				}
				return regs[r]
			}
			read64 := func(r isa.Reg) uint64 {
				return uint64(read(r)) | uint64(read(r+1))<<32
			}
			write := func(r isa.Reg, v uint32) {
				if r != isa.RZ {
					regs[r] = v
				}
			}
			for steps := 0; ; steps++ {
				if steps > 1<<20 {
					t.Fatal("scalar interpreter runaway")
				}
				in := &k.Code[pc]
				active := true
				if in.GuardPred >= 0 && in.GuardPred < isa.PT {
					active = preds[in.GuardPred] != in.GuardNeg
				}
				if in.Op == isa.EXIT && active {
					break
				}
				if in.Op == isa.BRA && active {
					pc = int(in.Imm)
					continue
				}
				if active {
					a := read(in.Src[0])
					b := uint32(in.Imm)
					if !in.HasImm {
						b = read(in.Src[1])
					}
					c := read(in.Src[2])
					switch in.Op {
					case isa.IADD:
						write(in.Dst, a+b)
					case isa.ISUB:
						write(in.Dst, a-b)
					case isa.IMUL:
						write(in.Dst, a*b)
					case isa.IMAD:
						if in.Wide {
							z := uint64(a)*uint64(b) + read64(in.Src[2])
							write(in.Dst, uint32(z))
							write(in.Dst+1, uint32(z>>32))
						} else {
							write(in.Dst, a*b+c)
						}
					case isa.AND:
						write(in.Dst, a&b)
					case isa.XOR:
						write(in.Dst, a^b)
					case isa.SHR:
						write(in.Dst, a>>(b&31))
					case isa.FADD:
						write(in.Dst, math.Float32bits(math.Float32frombits(a)+math.Float32frombits(b)))
					case isa.FSUB:
						write(in.Dst, math.Float32bits(math.Float32frombits(a)-math.Float32frombits(b)))
					case isa.FMUL:
						write(in.Dst, math.Float32bits(math.Float32frombits(a)*math.Float32frombits(b)))
					case isa.FFMA:
						write(in.Dst, math.Float32bits(float32(math.FMA(
							float64(math.Float32frombits(a)),
							float64(math.Float32frombits(b)),
							float64(math.Float32frombits(c))))))
					case isa.MUFU:
						x := float64(math.Float32frombits(a))
						write(in.Dst, math.Float32bits(float32(math.Sqrt(x))))
					case isa.I2F:
						write(in.Dst, math.Float32bits(float32(int32(a))))
					case isa.MOV:
						write(in.Dst, a|b)
					case isa.S2R:
						switch isa.SpecialReg(in.Imm) {
						case isa.SRTid:
							write(in.Dst, uint32(tid))
						case isa.SRCtaid:
							write(in.Dst, uint32(cta))
						case isa.SRNTid:
							write(in.Dst, uint32(k.CTAThreads))
						}
					case isa.ISETP, isa.FSETP:
						var tv bool
						if in.Op == isa.ISETP {
							x, y := int32(a), int32(b)
							switch in.Mod {
							case isa.CmpEQ:
								tv = x == y
							case isa.CmpNE:
								tv = x != y
							case isa.CmpLT:
								tv = x < y
							case isa.CmpLE:
								tv = x <= y
							case isa.CmpGT:
								tv = x > y
							case isa.CmpGE:
								tv = x >= y
							}
						} else {
							x, y := math.Float32frombits(a), math.Float32frombits(b)
							switch in.Mod {
							case isa.CmpLT:
								tv = x < y
							case isa.CmpGE:
								tv = x >= y
							}
						}
						if in.DstPred >= 0 && in.DstPred < isa.PT {
							preds[in.DstPred] = tv
						}
					case isa.LDG:
						write(in.Dst, mem[int(int32(a))+int(in.Imm)])
					case isa.STG:
						mem[int(int32(a))+int(in.Imm)] = read(in.Src[1])
					case isa.ATOM:
						addr := int(int32(a)) + int(in.Imm)
						old := mem[addr]
						if in.Mod == isa.OpAdd {
							mem[addr] = old + read(in.Src[1])
						}
						write(in.Dst, old)
					case isa.NOP:
					default:
						t.Fatalf("scalar interpreter: unsupported op %v", in.Op)
					}
				}
				pc++
			}
		}
	}
}

// diffGen emits race-free kernels: per-thread slots, divergent ifs and
// loops, atomics restricted to commutative adds, no barriers/shuffles.
func diffGen(seed int64, grid, cta int) *isa.Kernel {
	rng := rand.New(rand.NewSource(seed))
	n := grid * cta
	a := compiler.NewAsm("diff")
	a.S2R(0, isa.SRTid)
	a.S2R(1, isa.SRCtaid)
	a.S2R(2, isa.SRNTid)
	a.IMad(3, 1, 2, 0) // idx
	for r := isa.Reg(4); r < 12; r++ {
		if rng.Intn(2) == 0 {
			a.IAddI(r, 3, int32(rng.Intn(50)))
		} else {
			a.I2F(r, 3)
			a.FMulI(r, r, float32(rng.Intn(5))*0.5+0.5)
		}
	}
	sc := func() isa.Reg { return isa.Reg(4 + rng.Intn(8)) }
	lbl := 0
	newLbl := func() string {
		lbl++
		return "d" + string(rune('a'+lbl%26)) + string(rune('a'+(lbl/26)%26))
	}
	var emit func(depth int)
	emit = func(depth int) {
		for i, nitems := 0, 3+rng.Intn(5); i < nitems; i++ {
			switch rng.Intn(9) {
			case 0:
				a.IAdd(sc(), sc(), sc())
			case 1:
				a.FFma(sc(), sc(), sc(), sc())
			case 2:
				a.Mufu(isa.FnSQRT, sc(), sc())
			case 3:
				a.Ldg(sc(), 3, int32(2+rng.Intn(3))*int32(n))
			case 4:
				a.Stg(3, int32(rng.Intn(2))*int32(n), sc())
			case 5:
				a.Atom(isa.OpAdd, isa.RZ, isa.RZ, sc(), int32(5*n)) // shared counter
			case 6:
				if depth > 0 {
					p := int8(rng.Intn(3))
					a.ISetpI(isa.CmpLT, p, sc(), int32(rng.Intn(2000)))
					end := newLbl()
					a.BraP(p, rng.Intn(2) == 0, end, end)
					emit(depth - 1)
					a.Label(end)
				} else {
					a.Xor(sc(), sc(), sc())
				}
			case 7:
				if depth > 0 {
					ctr := isa.Reg(12 + depth)
					a.MovI(ctr, 0)
					head, after := newLbl(), newLbl()
					a.Label(head)
					emit(depth - 1)
					a.IAddI(ctr, ctr, 1)
					a.ISetpI(isa.CmpLT, 3, ctr, int32(2+rng.Intn(2)))
					a.BraP(3, false, head, after)
					a.Label(after)
				} else {
					a.IMul(sc(), sc(), sc())
				}
			default:
				a.FSub(sc(), sc(), sc())
			}
		}
	}
	emit(2)
	a.Stg(3, 0, sc())
	a.Exit()
	return a.MustBuild(grid, cta, 0)
}

// TestMachineMatchesScalarInterpreter is the machine's differential
// property: lockstep SIMT execution with divergence stacks produces the
// same memory as naive one-thread-at-a-time execution, under every
// protection scheme.
func TestMachineMatchesScalarInterpreter(t *testing.T) {
	trials := 30
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(40000 + trial)
		k := diffGen(seed, 2, 64)
		n := 2 * 64
		memSize := 6*n + 8
		init := make([]uint32, memSize)
		rng := rand.New(rand.NewSource(seed))
		for i := 2 * n; i < 5*n; i++ {
			init[i] = math.Float32bits(float32(rng.Intn(32)) * 0.25)
		}

		want := append([]uint32(nil), init...)
		scalarRun(t, k, want)

		for _, s := range []compiler.Scheme{compiler.Baseline, compiler.SwapECC, compiler.SWDup} {
			g := NewGPU(DefaultConfig(), memSize)
			copy(g.Mem, init)
			if _, err := g.Launch(compiler.MustApply(k, s)); err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			for i := range want {
				if g.Mem[i] != want[i] {
					t.Fatalf("seed %d %v: mem[%d] = %#x, scalar reference %#x",
						seed, s, i, g.Mem[i], want[i])
				}
			}
		}
	}
}
