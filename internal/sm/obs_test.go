package sm

import (
	"bytes"
	"strings"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/obs"
)

// TestObsTraceSchema is the acceptance gate for -trace: a traced launch
// must produce a Chrome trace-event JSON document that validates (and so
// loads in Perfetto / chrome://tracing).
func TestObsTraceSchema(t *testing.T) {
	const n = 200
	k := vecAddKernel(n, 4, 64)
	rec := obs.NewRecorder()
	g := NewGPU(DefaultConfig(), 3*n+64)
	g.Obs = rec
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	events, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("sm trace does not validate: %v", err)
	}

	// The trace must contain: one lifetime span per executed warp, at least
	// one sample of each counter series, and the process metadata.
	spans, byName := 0, map[string]int{}
	for _, e := range events {
		if e.Ph == "X" && e.Cat == "warp" {
			spans++
			if e.TS+e.Dur > st.Cycles+1 {
				t.Errorf("warp span %s ends at %d, past the %d-cycle launch", e.Name, e.TS+e.Dur, st.Cycles)
			}
		}
		byName[e.Name+"/"+e.Ph]++
	}
	wantWarps := 4 * 2 // grid=4 CTAs x (64 threads / 32 per warp)
	if spans != wantWarps {
		t.Errorf("warp spans = %d, want %d", spans, wantWarps)
	}
	for _, series := range []string{"sm.occupancy/C", "sm.issue_slots/C", "sm.stall_cycles/C"} {
		if byName[series] == 0 {
			t.Errorf("trace has no %s samples", series)
		}
	}
	if byName["process_name/M"] == 0 {
		t.Error("trace has no process metadata")
	}
}

// TestObsRegistryCounters checks the registry side: cycle and instruction
// counters must reconcile exactly with the launch Stats (the window flush
// on finalize must not lose the partial tail window).
func TestObsRegistryCounters(t *testing.T) {
	const n = 200
	k := vecAddKernel(n, 4, 64)
	rec := obs.NewRecorder()
	g := NewGPU(DefaultConfig(), 3*n+64)
	g.Obs = rec
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	// Instruments are labeled per kernel x scheme (DESIGN.md section 8); a
	// hand-built kernel launched without a compiler pass gets scheme "none".
	kv := []string{"kernel", k.Name, "scheme", "none"}
	if got := reg.Counter(obs.Name("sm.cycles", kv...)).Value(); got != st.Cycles {
		t.Errorf("sm.cycles = %d, want Stats.Cycles = %d", got, st.Cycles)
	}
	if got := reg.SumCounters("sm.cycles"); got != st.Cycles {
		t.Errorf("SumCounters(sm.cycles) = %d, want %d", got, st.Cycles)
	}
	if got := reg.Counter(obs.Name("sm.warp_instrs", kv...)).Value(); got != st.DynWarpInstrs {
		t.Errorf("sm.warp_instrs = %d, want Stats.DynWarpInstrs = %d", got, st.DynWarpInstrs)
	}
	if got := reg.Counter(obs.Name("sm.warps_retired", kv...)).Value(); got != 8 {
		t.Errorf("sm.warps_retired = %d, want 8", got)
	}
	if reg.Histogram(obs.Name("sm.scoreboard_wait_cycles", kv...)).Count() == 0 {
		t.Error("no scoreboard waits observed on a latency-bound kernel")
	}
	// The per-launch CPI-stack counters must reconcile with Stats too.
	var stallSum int64
	for _, m := range reg.Snapshot() {
		if base, _ := obs.ParseName(m.Name); base == "sm.stall_cycles" {
			stallSum += m.Value
		}
	}
	if stallSum != st.StallCycles() {
		t.Errorf("sm.stall_cycles family sums to %d, want Stats.StallCycles() = %d", stallSum, st.StallCycles())
	}
	if got := reg.SumCounters("sm.issue_cycles"); got != st.IssueCycles {
		t.Errorf("sm.issue_cycles = %d, want %d", got, st.IssueCycles)
	}
}

// TestObsStallCycleAccounting: fully-idle cycles plus rounds with issue
// must not exceed total cycles, and a dependence-chained kernel must charge
// most of its idle time to the scoreboard.
func TestObsStallCycleAccounting(t *testing.T) {
	const n = 64
	k := vecAddKernel(n, 1, 64)
	g := NewGPU(DefaultConfig(), 3*n+64)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.StallCycles() >= st.Cycles {
		t.Errorf("stall cycles %d >= total cycles %d", st.StallCycles(), st.Cycles)
	}
	if st.StallCyclesDeps == 0 {
		t.Error("single-warp latency-bound kernel charged no scoreboard stall cycles")
	}
}

// TestObsDetectionLatency: an injected pipeline error detected by the
// Swap-ECC decoder must land one observation in the detection-latency
// histogram and one DUE instant in the trace.
func TestObsDetectionLatency(t *testing.T) {
	base := containmentKernel()
	k := compiler.MustApply(base, compiler.SwapECC)
	cfg := DefaultConfig()
	cfg.ECC = true
	rec := obs.NewRecorder()
	g := NewGPU(cfg, 64)
	g.Obs = rec
	g.Fault = &FaultPlan{TargetDynInstr: 1, Lane: 2, BitMask: 4}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.PipelineDUEs == 0 {
		t.Fatal("fault was not detected; cannot measure latency")
	}
	h := rec.Registry().Histogram(obs.Name("sm.detect_latency_cycles",
		"kernel", k.Name, "scheme", "Swap-ECC"))
	if h.Count() != st.PipelineDUEs {
		t.Errorf("detection latency observations = %d, want %d (one per DUE)", h.Count(), st.PipelineDUEs)
	}
	if h.Quantile(1) < 1 {
		t.Error("detection latency must be at least the pipe latency")
	}
	dues := 0
	for _, e := range rec.Events() {
		if e.Name == "pipeline DUE" && e.Ph == "i" {
			dues++
		}
	}
	if int64(dues) != st.PipelineDUEs {
		t.Errorf("trace DUE instants = %d, want %d", dues, st.PipelineDUEs)
	}
}

// TestObsDisabledIdentical: the recorder must be purely observational —
// cycle counts and stats with and without it attached must be identical.
func TestObsDisabledIdentical(t *testing.T) {
	const n = 200
	run := func(rec *obs.Recorder) *Stats {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Obs = rec
		st, err := g.Launch(vecAddKernel(n, 4, 64))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	plain, observed := run(nil), run(obs.NewRecorder())
	if plain.Cycles != observed.Cycles || plain.DynWarpInstrs != observed.DynWarpInstrs ||
		plain.StallCyclesDeps != observed.StallCyclesDeps {
		t.Errorf("observation perturbed the simulation: %+v vs %+v", plain, observed)
	}
}

// TestObsUniqueProcesses: two launches of the same kernel on one recorder
// must land on distinct trace processes so their timelines do not overlap.
func TestObsUniqueProcesses(t *testing.T) {
	const n = 64
	rec := obs.NewRecorder()
	for i := 0; i < 2; i++ {
		g := NewGPU(DefaultConfig(), 3*n+64)
		g.Obs = rec
		if _, err := g.Launch(vecAddKernel(n, 1, 64)); err != nil {
			t.Fatal(err)
		}
	}
	names := map[string]bool{}
	for _, e := range rec.Events() {
		if e.Ph == "M" && e.Name == "process_name" {
			names[e.Args["name"].(string)] = true
		}
	}
	want := 0
	for name := range names {
		if strings.HasPrefix(name, "sm:vecadd") {
			want++
		}
	}
	if want != 2 {
		t.Errorf("launches share a trace process: %v", names)
	}
}
