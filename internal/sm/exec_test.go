package sm

import (
	"math"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
)

func run1(t *testing.T, k *isa.Kernel, memWords int, init func(*GPU)) *GPU {
	t.Helper()
	g := NewGPU(DefaultConfig(), memWords)
	if init != nil {
		init(g)
	}
	if _, err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShiftAmountsMasked(t *testing.T) {
	a := compiler.NewAsm("shift")
	const rTid, rV, rS = isa.Reg(0), isa.Reg(1), isa.Reg(2)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rV, 1)
	a.IAddI(rS, rTid, 33) // shift amounts 33..64 -> masked to 1..0
	a.ShlI(rV, rV, 40)    // immediate 40 & 31 = 8
	a.Stg(rTid, 0, rV)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 64, nil)
	for i := 0; i < 32; i++ {
		if g.Int32(i) != 1<<8 {
			t.Fatalf("lane %d: %d", i, g.Int32(i))
		}
	}
}

func TestF2INaNAndMufuEdges(t *testing.T) {
	a := compiler.NewAsm("edges")
	const rTid, rNaN, rI, rInf, rL = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3), isa.Reg(4)
	a.S2R(rTid, isa.SRTid)
	a.MovF(rNaN, float32(math.NaN()))
	a.F2I(rI, rNaN) // NaN -> 0 (deterministic)
	a.Stg(rTid, 0, rI)
	a.MovF(rInf, 0)
	a.Mufu(isa.FnRCP, rInf, rInf) // 1/0 -> +Inf
	a.Stg(rTid, 32, rInf)
	a.MovF(rL, -2)
	a.Mufu(isa.FnLG2, rL, rL) // log2(-2) -> NaN
	a.Stg(rTid, 64, rL)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 128, nil)
	if g.Int32(0) != 0 {
		t.Errorf("F2I(NaN) = %d", g.Int32(0))
	}
	if !math.IsInf(float64(g.Float32(32)), 1) {
		t.Errorf("RCP(0) = %v", g.Float32(32))
	}
	if !math.IsNaN(float64(g.Float32(64))) {
		t.Errorf("LG2(-2) = %v", g.Float32(64))
	}
}

func TestGuardNegAndFullyPredicatedOff(t *testing.T) {
	a := compiler.NewAsm("guards")
	const rTid, rV = isa.Reg(0), isa.Reg(1)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rV, 1)
	a.ISetpI(isa.CmpLT, 0, rTid, 0) // false everywhere
	a.MovI(rV, 2)
	a.Guard(0, false) // @p0: never executes
	a.MovI(rV, 3)
	a.Guard(0, true) // @!p0: executes everywhere
	a.Stg(rTid, 0, rV)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 64, nil)
	for i := 0; i < 32; i++ {
		if g.Int32(i) != 3 {
			t.Fatalf("lane %d: %d", i, g.Int32(i))
		}
	}
}

// TestSetpPredicateLatencyTracksPipe: a SETP's destination predicate becomes
// readable after the *producing pipe's* latency. FSETP runs on the FP32 pipe,
// so deepening that pipe must delay a guard that waits on its predicate —
// and must leave ISETP consumers untouched. (Regression: the scoreboard used
// to stamp every SETP predicate with the integer-pipe latency, which hid
// FP32 depth because DefaultConfig has LatFxP == LatFP32.)
func TestSetpPredicateLatencyTracksPipe(t *testing.T) {
	build := func(fp bool) *isa.Kernel {
		a := compiler.NewAsm("setplat")
		const rTid, rX, rY, rV = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
		a.S2R(rTid, isa.SRTid)
		a.MovF(rX, 1)
		a.MovF(rY, 2)
		a.MovI(rV, 7)
		if fp {
			a.FSetp(isa.CmpLT, 0, rX, rY)
		} else {
			a.ISetp(isa.CmpLT, 0, rX, rY)
		}
		a.Stg(rTid, 0, rV)
		a.Guard(0, false) // issue stalls until p0 is ready
		a.Exit()
		return a.MustBuild(1, 32, 0)
	}
	cycles := func(k *isa.Kernel, cfg Config) int64 {
		g := NewGPU(cfg, 64)
		st, err := g.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	deep := DefaultConfig()
	deep.LatFP32 = 30 // separate the pipes: by default LatFP32 == LatFxP
	extra := deep.LatFP32 - DefaultConfig().LatFP32
	if d := cycles(build(true), deep) - cycles(build(true), DefaultConfig()); d != extra {
		t.Errorf("FSETP-guarded issue shifted %d cycles under a %d-cycle-deeper FP32 pipe, want %d", d, extra, extra)
	}
	if d := cycles(build(false), deep) - cycles(build(false), DefaultConfig()); d != 0 {
		t.Errorf("ISETP-guarded issue shifted %d cycles when only the FP32 pipe deepened", d)
	}
}

// TestPredicateMergeUnderDivergence: a SETP executed by a subset of lanes
// must not clobber the predicate bits of inactive lanes.
func TestPredicateMergeUnderDivergence(t *testing.T) {
	a := compiler.NewAsm("pmerge")
	const rTid, rV = isa.Reg(0), isa.Reg(1)
	a.S2R(rTid, isa.SRTid)
	a.ISetpI(isa.CmpGE, 1, rTid, 16) // p1: upper half
	// Divergent region: lower half flips p1's *meaning* for itself only.
	a.ISetpI(isa.CmpGE, 0, rTid, 16)
	a.BraP(0, false, "skip", "skip")
	a.ISetpI(isa.CmpLT, 1, rTid, 8) // executed by lanes 0..15 only
	a.Label("skip")
	// p1 now: lanes 0-7 true, 8-15 false, 16-31 true (preserved).
	a.MovI(rV, 0)
	a.MovI(rV, 1)
	a.Guard(1, false)
	a.Stg(rTid, 0, rV)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 64, nil)
	for i := 0; i < 32; i++ {
		want := int32(0)
		if i < 8 || i >= 16 {
			want = 1
		}
		if g.Int32(i) != want {
			t.Fatalf("lane %d: %d, want %d", i, g.Int32(i), want)
		}
	}
}

func TestNestedDivergence(t *testing.T) {
	a := compiler.NewAsm("nest")
	const rTid, rV = isa.Reg(0), isa.Reg(1)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rV, 0)
	a.ISetpI(isa.CmpGE, 0, rTid, 8)
	a.BraP(0, false, "outer", "outer") // lanes >= 8 skip
	a.IAddI(rV, rV, 1)                 // lanes 0..7
	a.ISetpI(isa.CmpGE, 1, rTid, 4)
	a.BraP(1, false, "inner", "inner") // lanes 4..7 skip
	a.IAddI(rV, rV, 10)                // lanes 0..3
	a.Label("inner")
	a.IAddI(rV, rV, 100) // lanes 0..7
	a.Label("outer")
	a.IAddI(rV, rV, 1000) // all lanes
	a.Stg(rTid, 0, rV)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 64, nil)
	for i := 0; i < 32; i++ {
		var want int32
		switch {
		case i < 4:
			want = 1111
		case i < 8:
			want = 1101
		default:
			want = 1000
		}
		if g.Int32(i) != want {
			t.Fatalf("lane %d: %d, want %d", i, g.Int32(i), want)
		}
	}
}

func TestPartialExit(t *testing.T) {
	a := compiler.NewAsm("pexit")
	const rTid, rV = isa.Reg(0), isa.Reg(1)
	a.S2R(rTid, isa.SRTid)
	a.ISetpI(isa.CmpLT, 0, rTid, 16)
	a.Exit()
	a.Guard(0, false) // lower half exits early
	a.MovI(rV, 7)
	a.Stg(rTid, 0, rV)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 64, nil)
	for i := 0; i < 32; i++ {
		want := int32(0)
		if i >= 16 {
			want = 7
		}
		if g.Int32(i) != want {
			t.Fatalf("lane %d: %d, want %d", i, g.Int32(i), want)
		}
	}
}

func TestIMadWideProducesFullProduct(t *testing.T) {
	a := compiler.NewAsm("wide")
	const (
		rTid, rX, rY = isa.Reg(0), isa.Reg(1), isa.Reg(2)
		rC           = isa.Reg(4) // pair 4,5
		rZ           = isa.Reg(6) // pair 6,7
	)
	a.S2R(rTid, isa.SRTid)
	a.MovI(rX, 0x10001)
	a.IAddI(rY, rTid, 0x7fffffff>>8)
	a.MovI(rC, 5)
	a.MovI(rC+1, 1) // addend = 2^32 + 5
	a.IMadWide(rZ, rX, rY, rC)
	a.ShlI(rX, rTid, 1)
	a.Stg(rX, 0, rZ)
	a.Stg(rX, 1, rZ+1)
	a.Exit()
	g := run1(t, a.MustBuild(1, 32, 0), 128, nil)
	for i := 0; i < 32; i++ {
		want := uint64(0x10001)*uint64(0x7fffff+i) + (1 << 32) + 5
		got := uint64(g.Mem[2*i]) | uint64(g.Mem[2*i+1])<<32
		if got != want {
			t.Fatalf("lane %d: %#x, want %#x", i, got, want)
		}
	}
}

// TestBarrierWithEarlyExitReleases pins the CUDA-like barrier semantics:
// warps that have exited no longer count toward the barrier, so a barrier
// reached by only the surviving warps still releases (no hang).
func TestBarrierWithEarlyExitReleases(t *testing.T) {
	a := compiler.NewAsm("barexit")
	const rTid, rV = isa.Reg(0), isa.Reg(1)
	a.S2R(rTid, isa.SRTid)
	a.ISetpI(isa.CmpGE, 0, rTid, 64) // warps 2,3 exit before the barrier
	a.Exit()
	a.Guard(0, false)
	a.Bar() // only warps 0,1 arrive — must still release
	a.MovI(rV, 9)
	a.Stg(rTid, 0, rV)
	a.Exit()
	k := a.MustBuild(1, 128, 0)
	g := NewGPU(DefaultConfig(), 128)
	if _, err := g.Launch(k); err != nil {
		t.Fatalf("barrier with early-exited warps hung: %v", err)
	}
	if g.Int32(0) != 9 || g.Int32(63) != 9 {
		t.Error("surviving warps did not complete")
	}
}

func TestSharedMemoryOccupancyLimit(t *testing.T) {
	a := compiler.NewAsm("shm")
	a.Sts(isa.RZ, 0, isa.RZ)
	a.Exit()
	k := a.MustBuild(8, 32, 12288) // half the SM's shared memory per CTA
	g := NewGPU(DefaultConfig(), 16)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxResidentWarps != 2 { // 2 resident CTAs x 1 warp
		t.Errorf("resident warps %d, want 2 (shared-memory limited)", st.MaxResidentWarps)
	}
}

func TestAtomicsCASAndExch(t *testing.T) {
	const rTid, rOld, rNew, rCmp = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
	b := compiler.NewAsm("cas")
	b.S2R(rTid, isa.SRTid)
	b.MovI(rCmp, 0)
	b.IAddI(rNew, rTid, 1)
	// CAS(mem[0], 0 -> tid+1): only the first executed lane succeeds.
	b.AtomCAS(rOld, isa.RZ, rNew, rCmp, 0)
	b.Stg(rTid, 1, rOld)
	b.Exit()
	g := run1(t, b.MustBuild(1, 32, 0), 64, nil)
	if got := g.Int32(0); got != 1 { // lane 0 executes first: mem[0] = 0+1
		t.Errorf("CAS result %d, want 1", got)
	}
	// Every lane observed the pre-CAS value in lane order: lane 0 saw 0,
	// later lanes saw lane 0's swap.
	if g.Int32(1) != 0 {
		t.Errorf("lane 0 old value %d, want 0", g.Int32(1))
	}
	for i := 1; i < 32; i++ {
		if g.Int32(1+i) != 1 {
			t.Fatalf("lane %d old value %d, want 1", i, g.Int32(1+i))
		}
	}
	// EXCH: every lane swaps; the final value is the last lane's.
	c := compiler.NewAsm("exch")
	c.S2R(rTid, isa.SRTid)
	c.IAddI(rNew, rTid, 50)
	c.Atom(isa.OpExch, rOld, isa.RZ, rNew, 4)
	c.Exit()
	g2 := run1(t, c.MustBuild(1, 32, 0), 64, nil)
	if got := g2.Int32(4); got != 81 { // lane 31: 31+50
		t.Errorf("EXCH final %d, want 81", got)
	}
}
