package sm

import (
	"fmt"
	"math"
	"math/bits"

	"swapcodes/internal/core"
	"swapcodes/internal/ecc"
	"swapcodes/internal/isa"
	"swapcodes/internal/obs/simprof"
)

func f32Bits(f float32) uint32     { return math.Float32bits(f) }
func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func f64Bits(f float64) uint64     { return math.Float64bits(f) }
func f64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// DUEError reports a halted simulation after the register-file decoder
// flagged a pipeline error (Config.HaltOnDUE).
type DUEError struct {
	Kernel string
	Reg    isa.Reg
	Lane   int
}

// Error implements error.
func (e *DUEError) Error() string {
	return fmt.Sprintf("sm: kernel %s: pipeline DUE on %v lane %d", e.Kernel, e.Reg, e.Lane)
}

// oobError is the single out-of-bounds diagnostic for every memory-access
// path — vectorized, scalar, store, and atomic. Each path used to format
// its own message and the shared/scalar variants dropped the faulting lane,
// which is the one field that localizes the bad thread; now every fault
// reports kernel, opcode, address, lane, and address space identically.
func (m *machine) oobError(op isa.Opcode, addr, lane int) error {
	space := "global"
	if op == isa.LDS || op == isa.STS {
		space = "shared"
	}
	return fmt.Errorf("sm: kernel %s: %v out of bounds: %d (lane %d, %s memory)",
		m.k.Name, op, addr, lane, space)
}

func (w *warpState) readR(r isa.Reg, lane int) uint32 {
	if r == isa.RZ {
		return 0
	}
	return w.regs[int(r)*isa.WarpSize+lane]
}

func (w *warpState) read64(r isa.Reg, lane int) uint64 {
	return uint64(w.readR(r, lane)) | uint64(w.readR(r+1, lane))<<32
}

// zeroLanes backs RZ operand slices; it is read-only.
var zeroLanes [isa.WarpSize]uint32

// laneSlice returns the 32-lane value slice of a register (RZ reads zeros).
func (w *warpState) laneSlice(r isa.Reg) []uint32 {
	if r == isa.RZ {
		return zeroLanes[:]
	}
	return w.regs[int(r)*isa.WarpSize : int(r)*isa.WarpSize+isa.WarpSize]
}

// activeMask applies the guard predicate to the warp's current mask.
func (w *warpState) activeMask(in *isa.Instr) uint32 {
	mask := w.top().mask
	if in.Unconditional() {
		return mask
	}
	bits := w.preds[in.GuardPred]
	if in.GuardNeg {
		bits = ^bits
	}
	return mask & bits
}

// exec functionally executes one warp instruction, including control flow
// and the ECC-protected register-file bookkeeping. Global-memory effects are
// deferred to the partition's write log (committed at the barrier); loads
// read committed memory through the partition's own-store overlay.
func (p *partition) exec(w *warpState, in *isa.Instr) error {
	m := p.m
	mask := w.activeMask(in)
	injectNow := m.g.Fault != nil && !m.g.Fault.Applied && m.dyn-1 == m.g.Fault.TargetDynInstr

	// Armed memory hierarchy: coalesce and log this access's sectors before
	// dispatch (an LDG's destination may alias its address register, so the
	// addresses must be read now). One nil-check branch on the off path.
	if m.mh != nil && mask != 0 && (in.Op == isa.LDG || in.Op == isa.STG) {
		p.logMem(w, in, mask)
	}

	// ECC mode: run every source register of active lanes through the
	// decoder, as a real read port would.
	if w.rf != nil && mask != 0 {
		if err := m.eccCheckSources(w, in, mask); err != nil {
			return err
		}
	}

	switch in.Op {
	case isa.BRA:
		return m.execBranch(w, in)
	case isa.EXIT:
		p.execExit(w, mask)
		return nil
	case isa.BPT:
		if mask != 0 {
			p.trapped = true
			if m.obsm != nil {
				m.obsm.rec.Instant(m.obsm.pid, 0, "BPT trap", "due", m.cycle, nil)
			}
			p.execExit(w, w.top().mask)
			return nil
		}
		w.advancePC()
		return nil
	case isa.BAR:
		// Arrival is logged, not applied: the CTA's other warps may live in
		// other partitions, so cta.arrived moves only at the merge, which
		// also runs the release check (applyCTAEvents).
		w.advancePC()
		w.atBarrier = true
		p.events = append(p.events, ctaEvent{cta: w.cta, arrive: true})
		return nil
	case isa.NOP:
		w.advancePC()
		return nil
	case isa.ISETP, isa.FSETP:
		m.execSetp(w, in, mask)
		w.advancePC()
		return nil
	case isa.STG, isa.STS:
		err := p.execStore(w, in, mask)
		w.advancePC()
		return err
	case isa.ATOM:
		return p.execAtom(w, in, mask, injectNow)
	}

	// Register-writing instructions: the common cases take the fused
	// per-opcode lane loops; everything else goes through the generic
	// compute/writeback pair.
	if w.rf == nil && !injectNow && m.g.Trace == nil {
		if done, err := p.execFast(w, in, mask); done || err != nil {
			if err != nil {
				return err
			}
			w.advancePC()
			return nil
		}
	}
	var res, resHi [isa.WarpSize]uint32
	wide := in.Is64Dst()
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		lo, hi, err := p.compute(w, in, lane)
		if err != nil {
			return err
		}
		res[lane] = lo
		resHi[lane] = hi
		if m.g.Trace != nil {
			m.traceLane(w, in, lane, uint64(lo)|uint64(hi)<<32)
		}
	}
	m.writeback(w, in, mask, &res, &resHi, wide, injectNow)
	w.advancePC()
	return nil
}

// execFast handles the hot value-producing opcodes with one fused loop per
// opcode, writing lanes directly into the destination register. It is only
// entered when nothing observes intermediate state (no ECC register file, no
// armed fault, no tracer), and bails out (false) on anything unusual so the
// generic path stays the single source of truth for rare shapes. Cross-lane
// reads (SHFL) are excluded: in-place writes would corrupt them when the
// destination aliases the source.
func (p *partition) execFast(w *warpState, in *isa.Instr, mask uint32) (bool, error) {
	if in.Flags&isa.FlagShadow != 0 || in.Dst == isa.RZ || in.Is64Dst() {
		return false, nil
	}
	m := p.m
	d := w.laneSlice(in.Dst)
	a := w.laneSlice(in.Src[0])
	var b []uint32
	var bb [isa.WarpSize]uint32
	if in.HasImm {
		imm := uint32(in.Imm)
		for l := range bb {
			bb[l] = imm
		}
		b = bb[:]
	} else {
		b = w.laneSlice(in.Src[1])
	}
	switch in.Op {
	case isa.IADD:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] + b[l]
			}
		}
	case isa.ISUB:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] - b[l]
			}
		}
	case isa.IMUL:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] * b[l]
			}
		}
	case isa.IMAD:
		if in.Wide {
			return false, nil
		}
		c := w.laneSlice(in.Src[2])
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l]*b[l] + c[l]
			}
		}
	case isa.AND:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] & b[l]
			}
		}
	case isa.OR:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] | b[l]
			}
		}
	case isa.XOR:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] ^ b[l]
			}
		}
	case isa.SHL:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] << (b[l] & 31)
			}
		}
	case isa.SHR:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = a[l] >> (b[l] & 31)
			}
		}
	case isa.MOV:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = b[l] | a[l]
			}
		}
	case isa.FADD:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = f32Bits(f32FromBits(a[l]) + f32FromBits(b[l]))
			}
		}
	case isa.FSUB:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = f32Bits(f32FromBits(a[l]) - f32FromBits(b[l]))
			}
		}
	case isa.FMUL:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = f32Bits(f32FromBits(a[l]) * f32FromBits(b[l]))
			}
		}
	case isa.FFMA:
		c := w.laneSlice(in.Src[2])
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = f32Bits(float32(math.FMA(float64(f32FromBits(a[l])),
					float64(f32FromBits(b[l])), float64(f32FromBits(c[l])))))
			}
		}
	case isa.I2F:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = f32Bits(float32(int32(a[l])))
			}
		}
	case isa.F2I:
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				f := f32FromBits(a[l])
				if f != f { // NaN
					d[l] = 0
				} else {
					d[l] = uint32(int32(f))
				}
			}
		}
	case isa.S2R:
		sr := isa.SpecialReg(in.Imm)
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) != 0 {
				d[l] = m.special(w, sr, l)
			}
		}
	case isa.LDS:
		shared := w.cta.shared
		overlay := len(p.slog) > 0
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) == 0 {
				continue
			}
			addr := int(int32(a[l])) + int(in.Imm)
			if addr < 0 || addr >= len(shared) {
				return true, m.oobError(isa.LDS, addr, l)
			}
			if overlay {
				if v, ok := p.lookupS(w.cta, int32(addr)); ok {
					d[l] = v
					continue
				}
			}
			d[l] = shared[addr]
		}
	case isa.LDG:
		mem := m.g.Mem
		overlay := len(p.wlog) > 0
		for l := 0; l < isa.WarpSize; l++ {
			if mask&(1<<uint(l)) == 0 {
				continue
			}
			addr := int(int32(a[l])) + int(in.Imm)
			if addr < 0 || addr >= len(mem) {
				return true, m.oobError(isa.LDG, addr, l)
			}
			if overlay {
				if v, ok := p.lookupW(int32(addr)); ok {
					d[l] = v
					continue
				}
			}
			d[l] = mem[addr]
		}
	default:
		return false, nil
	}
	return true, nil
}

// compute evaluates one lane of a value-producing instruction.
func (p *partition) compute(w *warpState, in *isa.Instr, lane int) (lo, hi uint32, err error) {
	m := p.m
	a := w.readR(in.Src[0], lane)
	var b uint32
	if in.HasImm {
		b = uint32(in.Imm)
	} else {
		b = w.readR(in.Src[1], lane)
	}
	switch in.Op {
	case isa.IADD:
		return a + b, 0, nil
	case isa.ISUB:
		return a - b, 0, nil
	case isa.IMUL:
		return a * b, 0, nil
	case isa.IMAD:
		if in.Wide {
			z := uint64(a)*uint64(b) + w.read64(in.Src[2], lane)
			return uint32(z), uint32(z >> 32), nil
		}
		return a*b + w.readR(in.Src[2], lane), 0, nil
	case isa.AND:
		return a & b, 0, nil
	case isa.OR:
		return a | b, 0, nil
	case isa.XOR:
		return a ^ b, 0, nil
	case isa.SHL:
		return a << (b & 31), 0, nil
	case isa.SHR:
		return a >> (b & 31), 0, nil
	case isa.FADD:
		return f32Bits(f32FromBits(a) + f32FromBits(b)), 0, nil
	case isa.FSUB:
		return f32Bits(f32FromBits(a) - f32FromBits(b)), 0, nil
	case isa.FMUL:
		return f32Bits(f32FromBits(a) * f32FromBits(b)), 0, nil
	case isa.FFMA:
		c := f32FromBits(w.readR(in.Src[2], lane))
		return f32Bits(float32(math.FMA(float64(f32FromBits(a)), float64(f32FromBits(b)), float64(c)))), 0, nil
	case isa.DADD:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) + f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DSUB:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) - f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DMUL:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) * f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DFMA:
		z := f64Bits(math.FMA(f64FromBits(w.read64(in.Src[0], lane)),
			f64FromBits(w.read64(in.Src[1], lane)),
			f64FromBits(w.read64(in.Src[2], lane))))
		return uint32(z), uint32(z >> 32), nil
	case isa.MUFU:
		x := float64(f32FromBits(a))
		var v float64
		switch in.Mod {
		case isa.FnRCP:
			v = 1 / x
		case isa.FnSQRT:
			v = math.Sqrt(x)
		case isa.FnEX2:
			v = math.Exp2(x)
		case isa.FnLG2:
			v = math.Log2(x)
		}
		return f32Bits(float32(v)), 0, nil
	case isa.I2F:
		return f32Bits(float32(int32(a))), 0, nil
	case isa.F2I:
		f := f32FromBits(a)
		if f != f { // NaN
			return 0, 0, nil
		}
		return uint32(int32(f)), 0, nil
	case isa.MOV:
		return b | a, 0, nil // MOV d,s has Src[0]=s; MovI has Src[0]=RZ and imm
	case isa.S2R:
		return m.special(w, isa.SpecialReg(in.Imm), lane), 0, nil
	case isa.SHFL:
		src := lane ^ int(in.Imm&31)
		return w.readR(in.Src[0], src), 0, nil
	case isa.LDG:
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(m.g.Mem) {
			return 0, 0, m.oobError(isa.LDG, addr, lane)
		}
		if len(p.wlog) > 0 {
			if v, ok := p.lookupW(int32(addr)); ok {
				return v, 0, nil
			}
		}
		return m.g.Mem[addr], 0, nil
	case isa.LDS:
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(w.cta.shared) {
			return 0, 0, m.oobError(isa.LDS, addr, lane)
		}
		if len(p.slog) > 0 {
			if v, ok := p.lookupS(w.cta, int32(addr)); ok {
				return v, 0, nil
			}
		}
		return w.cta.shared[addr], 0, nil
	}
	return 0, 0, fmt.Errorf("sm: kernel %s: unimplemented opcode %v", m.k.Name, in.Op)
}

// execAtom captures an ATOM for barrier replay: per-lane addresses and
// operands are latched now (program-order reads of the issuing warp), the
// read-modify-write happens at the barrier in partition order, and the warp
// is parked for the rest of the round so no younger instruction can slip in
// between (see atomOp).
func (p *partition) execAtom(w *warpState, in *isa.Instr, mask uint32, injectNow bool) error {
	m := p.m
	op := &atomOp{w: w, in: in, mask: mask, inject: injectNow}
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := w.readR(in.Src[0], lane)
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(m.g.Mem) {
			return m.oobError(isa.ATOM, addr, lane)
		}
		op.addr[lane] = int32(addr)
		op.val[lane] = w.readR(in.Src[1], lane)
		op.cmp[lane] = w.readR(in.Src[2], lane)
	}
	p.wlog = append(p.wlog, memEvent{atom: op})
	w.atomHold = true
	p.parks++
	if p.fr != nil {
		p.fr.Add(simprof.Decision{Cycle: m.cycle, Warp: int32(w.gid),
			PC: w.top().pc, Kind: simprof.KindPark})
	}
	w.advancePC()
	return nil
}

// traceLane forwards one executed lane to the value tracer.
func (m *machine) traceLane(w *warpState, in *isa.Instr, lane int, result uint64) {
	var a, b, c uint64
	switch in.Op {
	case isa.DADD, isa.DSUB, isa.DMUL:
		a = w.read64(in.Src[0], lane)
		b = w.read64(in.Src[1], lane)
	case isa.DFMA:
		a = w.read64(in.Src[0], lane)
		b = w.read64(in.Src[1], lane)
		c = w.read64(in.Src[2], lane)
	default:
		a = uint64(w.readR(in.Src[0], lane))
		if in.HasImm {
			b = uint64(uint32(in.Imm))
		} else {
			b = uint64(w.readR(in.Src[1], lane))
		}
		if in.Op == isa.IMAD && in.Wide {
			c = w.read64(in.Src[2], lane)
		} else {
			c = uint64(w.readR(in.Src[2], lane))
		}
	}
	m.g.Trace(in.Op, in.Wide, lane, a, b, c, result)
}

func (m *machine) special(w *warpState, sr isa.SpecialReg, lane int) uint32 {
	switch sr {
	case isa.SRTid:
		return uint32(w.idInCTA*isa.WarpSize + lane)
	case isa.SRCtaid:
		return uint32(w.cta.id)
	case isa.SRNTid:
		return uint32(m.k.CTAThreads)
	case isa.SRNCta:
		return uint32(m.k.GridCTAs)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarp:
		return uint32(w.idInCTA)
	}
	return 0
}

// writeback commits results, applying the swap-coded register-file
// semantics and any armed pipeline-fault injection.
func (m *machine) writeback(w *warpState, in *isa.Instr, mask uint32, res, resHi *[isa.WarpSize]uint32, wide bool, injectNow bool) {
	if in.Dst == isa.RZ {
		if injectNow {
			m.g.Fault.Applied = true // fault landed in a discarded result
			m.faultCycle = m.cycle
		}
		return
	}
	fp := m.g.Fault
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		trueLo, trueHi := res[lane], resHi[lane]
		lo, hi := trueLo, trueHi
		if injectNow && lane == fp.Lane {
			lo ^= fp.BitMask
			hi ^= fp.BitMaskHi
			fp.Applied = true
			m.faultCycle = m.cycle
		}
		if wide && w.rf != nil && in.Flags&isa.FlagPredicted != 0 {
			// Compute both halves' predicted check bits BEFORE either write
			// lands: the destination pair may overlap a source register
			// (predicted accumulation), and the prediction must see the
			// pre-write residues.
			loChk := m.predictedCheck(w, in, int(in.Dst), lane, trueLo)
			hiChk := m.predictedCheck(w, in, int(in.Dst)+1, lane, trueHi)
			w.rf.WritePredicted(int(in.Dst), lane, lo, loChk)
			w.rf.WritePredicted(int(in.Dst)+1, lane, hi, hiChk)
			w.regs[int(in.Dst)*isa.WarpSize+lane] = lo
			w.regs[(int(in.Dst)+1)*isa.WarpSize+lane] = hi
			continue
		}
		m.writeLane(w, in, int(in.Dst), lane, lo, trueLo)
		if wide {
			m.writeLane(w, in, int(in.Dst)+1, lane, hi, trueHi)
		}
	}
}

// writeLane writes one register of one lane, with the Table II write-back
// semantics: a shadow instruction's write is masked to the ECC check bits;
// a predicted instruction's check bits come from the (error-free)
// prediction pipeline; a propagated move carries the stored ECC word.
func (m *machine) writeLane(w *warpState, in *isa.Instr, reg, lane int, value, trueValue uint32) {
	if w.rf != nil {
		switch {
		case in.Flags&isa.FlagShadow != 0:
			// ECC-only write: architectural data unchanged.
			w.rf.WriteShadow(reg, lane, value)
			return
		case in.Flags&isa.FlagPredicted != 0 && in.Op == isa.MOV && !in.HasImm:
			// End-to-end move propagation (Figure 4): the full stored ECC
			// word rides along; a datapath error corrupts only the data.
			w.rf.PropagateMove(reg, int(in.Src[0]), lane)
			w.rf.WritePredicted(reg, lane, value, w.rf.CheckBitsOf(reg, lane))
		case in.Flags&isa.FlagPredicted != 0:
			// The prediction unit forms check bits from the input residues,
			// independent of the (possibly faulted) main datapath.
			w.rf.WritePredicted(reg, lane, value, m.predictedCheck(w, in, reg, lane, trueValue))
		default:
			w.rf.WriteFull(reg, lane, value)
		}
		w.regs[reg*isa.WarpSize+lane] = value
		return
	}
	if in.Flags&isa.FlagShadow != 0 {
		return // masked write; no architectural data effect
	}
	w.regs[reg*isa.WarpSize+lane] = value
}

// predictedCheck forms the Swap-Predict check bits for one written
// register. For residue organizations and the fixed-point operations the
// paper designed real predictors for (Figure 9), the check bits come from
// the SOURCES' stored residues through the prediction algebra — so a
// pending error on an input register propagates into the predicted check
// bits and stays detectable through arithmetic chains. Everything else
// (logic/shift/floating point — the paper's projected future predictors,
// plus the non-residue organizations) uses the idealized oracle.
func (m *machine) predictedCheck(w *warpState, in *isa.Instr, reg, lane int, trueValue uint32) uint32 {
	r, ok := w.rf.ResidueCode()
	if !ok {
		return w.rf.PredictCheck(trueValue)
	}
	res := func(src isa.Reg) uint32 {
		if src == isa.RZ {
			return 0
		}
		return r.Canon(w.rf.CheckBitsOf(int(src), lane))
	}
	op1 := func() (val uint32, residue uint32) {
		if in.HasImm {
			return uint32(in.Imm), r.Encode(uint32(in.Imm))
		}
		return w.readR(in.Src[1], lane), res(in.Src[1])
	}
	a := w.readR(in.Src[0], lane)
	ra := res(in.Src[0])
	switch in.Op {
	case isa.IADD:
		b, rb := op1()
		cout := (uint64(a)+uint64(b))>>32 != 0
		return r.PredictAdd(ra, rb, false, cout)
	case isa.ISUB:
		b, rb := op1()
		// Datapath computes a + ^b + 1; |^b|_A derives from |b|_A by
		// subtracting from |2^32 - 1|_A (wiring + one EAC add).
		allOnes := r.Sub(r.PowerOfTwoResidue(32), 1)
		rInvB := r.Sub(allOnes, rb)
		cout := (uint64(a)+uint64(^b)+1)>>32 != 0
		return r.PredictSub(ra, rInvB, cout)
	case isa.IMUL:
		b, rb := op1()
		z := uint64(a) * uint64(b)
		rz := r.Mul(ra, rb)
		lo, _ := recodePair(r, rz, z)
		return lo
	case isa.IMAD:
		b, rb := op1()
		if in.Wide {
			c := w.read64(in.Src[2], lane)
			z, cout := madWide(a, b, c)
			lo, hi := r.PredictMAD64(ra, rb, res(in.Src[2]+1), res(in.Src[2]), z, cout)
			if isa.Reg(reg) == in.Dst {
				return r.Canon(lo)
			}
			return r.Canon(hi)
		}
		c := w.readR(in.Src[2], lane)
		z := uint64(a)*uint64(b) + uint64(c)
		rz := r.Add(r.Mul(ra, rb), res(in.Src[2]))
		lo, _ := recodePair(r, rz, z)
		return lo
	}
	// Projected predictors (logic/shift/FP) and moves with immediates.
	return w.rf.PredictCheck(trueValue)
}

// recodePair splits a full-width predicted residue into the written 32-bit
// registers via the Figure 9b recoding encoder.
func recodePair(r ecc.Residue, rz uint32, z uint64) (lo, hi uint32) {
	return r.Canon(r.RecodeLow(rz, uint32(z>>32))), r.Canon(r.RecodeHigh(rz, uint32(z)))
}

// madWide recomputes the wide MAD with its carry-out (the Table III input).
func madWide(a, b uint32, c uint64) (uint64, bool) {
	hi64, lo64 := mulHiLo(uint64(a), uint64(b))
	z := lo64 + c
	carry := uint64(0)
	if z < lo64 {
		carry = 1
	}
	return z, hi64+carry != 0
}

func mulHiLo(x, y uint64) (hi, lo uint64) {
	return bits.Mul64(x, y)
}

func (m *machine) execSetp(w *warpState, in *isa.Instr, mask uint32) {
	var bits uint32
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := w.readR(in.Src[0], lane)
		var b uint32
		if in.HasImm {
			b = uint32(in.Imm)
		} else {
			b = w.readR(in.Src[1], lane)
		}
		var t bool
		if in.Op == isa.ISETP {
			x, y := int32(a), int32(b)
			switch in.Mod {
			case isa.CmpEQ:
				t = x == y
			case isa.CmpNE:
				t = x != y
			case isa.CmpLT:
				t = x < y
			case isa.CmpLE:
				t = x <= y
			case isa.CmpGT:
				t = x > y
			case isa.CmpGE:
				t = x >= y
			}
		} else {
			x, y := f32FromBits(a), f32FromBits(b)
			switch in.Mod {
			case isa.CmpEQ:
				t = x == y
			case isa.CmpNE:
				t = x != y
			case isa.CmpLT:
				t = x < y
			case isa.CmpLE:
				t = x <= y
			case isa.CmpGT:
				t = x > y
			case isa.CmpGE:
				t = x >= y
			}
		}
		if t {
			bits |= 1 << uint(lane)
		}
	}
	if in.DstPred >= 0 && in.DstPred < isa.PT {
		w.preds[in.DstPred] = (w.preds[in.DstPred] &^ mask) | bits
	}
}

// execStore defers both store flavors to the partition's write logs,
// visible to this partition's own loads through the overlays and committed
// at the barrier in partition order. STG targets global memory; STS targets
// the warp's CTA's shared memory, which other partitions can also host
// warps of.
func (p *partition) execStore(w *warpState, in *isa.Instr, mask uint32) error {
	m := p.m
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := int(int32(w.readR(in.Src[0], lane))) + int(in.Imm)
		val := w.readR(in.Src[1], lane)
		if in.Op == isa.STG {
			if addr < 0 || addr >= len(m.g.Mem) {
				return m.oobError(isa.STG, addr, lane)
			}
			p.wlog = append(p.wlog, memEvent{addr: int32(addr), val: val})
		} else {
			if addr < 0 || addr >= len(w.cta.shared) {
				return m.oobError(isa.STS, addr, lane)
			}
			p.slog = append(p.slog, smemEvent{cta: w.cta, addr: int32(addr), val: val})
		}
	}
	return nil
}

func (m *machine) execBranch(w *warpState, in *isa.Instr) error {
	top := w.top()
	curPC := top.pc
	var takenMask uint32
	if in.Unconditional() {
		takenMask = top.mask
	} else {
		bits := w.preds[in.GuardPred]
		if in.GuardNeg {
			bits = ^bits
		}
		takenMask = top.mask & bits
	}
	switch {
	case takenMask == top.mask:
		top.pc = in.Imm
	case takenMask == 0:
		top.pc = curPC + 1
	default:
		fall := top.mask &^ takenMask
		reconv := in.Reconv
		top.pc = reconv // continuation with the full mask
		w.stack = append(w.stack,
			simtEntry{pc: curPC + 1, mask: fall, reconv: reconv},
			simtEntry{pc: in.Imm, mask: takenMask, reconv: reconv})
		if len(w.stack) > 64 {
			return fmt.Errorf("sm: kernel %s: SIMT stack overflow (malformed reconvergence?)", m.k.Name)
		}
	}
	w.popReconverged()
	return nil
}

func (w *warpState) advancePC() {
	w.top().pc++
	w.popReconverged()
}

func (w *warpState) popReconverged() {
	for len(w.stack) > 1 {
		t := w.top()
		if t.reconv >= 0 && t.pc == t.reconv {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
}

// execExit removes lanes from the warp; when all are gone the warp retires.
// The CTA-level effects (liveWarps, releasing a barrier the exiting warp
// would have blocked) are logged and applied at the merge, because the CTA
// may span partitions.
func (p *partition) execExit(w *warpState, mask uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.top().mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
		p.retired++
		p.events = append(p.events, ctaEvent{cta: w.cta})
		return
	}
	w.advancePC()
	// advancePC moved past EXIT for the remaining (guarded-off) lanes; the
	// pop check above may already have resolved reconvergence.
}

// eccCheckSources runs the register-file decoder over every register source
// of the instruction's active lanes, tallying SwapCodes detections.
func (m *machine) eccCheckSources(w *warpState, in *isa.Instr, mask uint32) error {
	check := func(r isa.Reg) error {
		if r == isa.RZ {
			return nil
		}
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			v, out := w.rf.Read(int(r), lane)
			switch out {
			case core.ReadOK:
			case core.ReadCorrectedStorage:
				m.stats.StorageCorrections++
				w.regs[int(r)*isa.WarpSize+lane] = v
			case core.ReadDUEPipeline:
				m.stats.PipelineDUEs++
				if m.obsm != nil {
					m.obsm.due(m, r, lane)
				}
				if m.cfg.HaltOnDUE {
					return &DUEError{Kernel: m.k.Name, Reg: r, Lane: lane}
				}
			default:
				m.stats.StorageDUEs++
			}
		}
		return nil
	}
	for si, s := range in.Src {
		if si == 1 && in.HasImm {
			continue
		}
		wide := false
		switch in.Op {
		case isa.DADD, isa.DSUB, isa.DMUL:
			wide = si < 2
		case isa.DFMA:
			wide = true
		case isa.IMAD:
			wide = in.Wide && si == 2
		}
		if err := check(s); err != nil {
			return err
		}
		if wide {
			if err := check(s + 1); err != nil {
				return err
			}
		}
	}
	return nil
}
