package sm

import (
	"fmt"
	"math"
	"math/bits"

	"swapcodes/internal/core"
	"swapcodes/internal/ecc"
	"swapcodes/internal/isa"
)

func f32Bits(f float32) uint32     { return math.Float32bits(f) }
func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func f64Bits(f float64) uint64     { return math.Float64bits(f) }
func f64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// DUEError reports a halted simulation after the register-file decoder
// flagged a pipeline error (Config.HaltOnDUE).
type DUEError struct {
	Kernel string
	Reg    isa.Reg
	Lane   int
}

// Error implements error.
func (e *DUEError) Error() string {
	return fmt.Sprintf("sm: kernel %s: pipeline DUE on %v lane %d", e.Kernel, e.Reg, e.Lane)
}

func (w *warpState) readR(r isa.Reg, lane int) uint32 {
	if r == isa.RZ {
		return 0
	}
	return w.regs[int(r)*isa.WarpSize+lane]
}

func (w *warpState) read64(r isa.Reg, lane int) uint64 {
	return uint64(w.readR(r, lane)) | uint64(w.readR(r+1, lane))<<32
}

// activeMask applies the guard predicate to the warp's current mask.
func (w *warpState) activeMask(in *isa.Instr) uint32 {
	mask := w.top().mask
	if in.Unconditional() {
		return mask
	}
	bits := w.preds[in.GuardPred]
	if in.GuardNeg {
		bits = ^bits
	}
	return mask & bits
}

// exec functionally executes one warp instruction, including control flow
// and the ECC-protected register-file bookkeeping.
func (m *machine) exec(w *warpState, in *isa.Instr) error {
	mask := w.activeMask(in)
	injectNow := m.g.Fault != nil && !m.g.Fault.Applied && m.dyn-1 == m.g.Fault.TargetDynInstr

	// ECC mode: run every source register of active lanes through the
	// decoder, as a real read port would.
	if w.rf != nil && mask != 0 {
		if err := m.eccCheckSources(w, in, mask); err != nil {
			return err
		}
	}

	switch in.Op {
	case isa.BRA:
		return m.execBranch(w, in)
	case isa.EXIT:
		m.execExit(w, mask)
		return nil
	case isa.BPT:
		if mask != 0 {
			m.stats.Trapped = true
			if m.obsm != nil {
				m.obsm.rec.Instant(m.obsm.pid, 0, "BPT trap", "due", m.cycle, nil)
			}
			m.execExit(w, w.top().mask)
			return nil
		}
		m.advancePC(w)
		return nil
	case isa.BAR:
		m.advancePC(w)
		cta := w.cta
		w.atBarrier = true
		cta.arrived++
		if cta.arrived >= cta.liveWarps {
			for _, ww := range cta.warps {
				ww.atBarrier = false
			}
			cta.arrived = 0
		}
		return nil
	case isa.NOP:
		m.advancePC(w)
		return nil
	case isa.ISETP, isa.FSETP:
		m.execSetp(w, in, mask)
		m.advancePC(w)
		return nil
	case isa.STG, isa.STS:
		err := m.execStore(w, in, mask)
		m.advancePC(w)
		return err
	}

	// Register-writing instructions.
	var res, resHi [isa.WarpSize]uint32
	wide := in.Is64Dst()
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		lo, hi, err := m.compute(w, in, lane)
		if err != nil {
			return err
		}
		res[lane] = lo
		resHi[lane] = hi
		if m.g.Trace != nil {
			m.traceLane(w, in, lane, uint64(lo)|uint64(hi)<<32)
		}
	}
	m.writeback(w, in, mask, &res, &resHi, wide, injectNow)
	m.advancePC(w)
	return nil
}

// compute evaluates one lane of a value-producing instruction.
func (m *machine) compute(w *warpState, in *isa.Instr, lane int) (lo, hi uint32, err error) {
	a := w.readR(in.Src[0], lane)
	var b uint32
	if in.HasImm {
		b = uint32(in.Imm)
	} else {
		b = w.readR(in.Src[1], lane)
	}
	switch in.Op {
	case isa.IADD:
		return a + b, 0, nil
	case isa.ISUB:
		return a - b, 0, nil
	case isa.IMUL:
		return a * b, 0, nil
	case isa.IMAD:
		if in.Wide {
			z := uint64(a)*uint64(b) + w.read64(in.Src[2], lane)
			return uint32(z), uint32(z >> 32), nil
		}
		return a*b + w.readR(in.Src[2], lane), 0, nil
	case isa.AND:
		return a & b, 0, nil
	case isa.OR:
		return a | b, 0, nil
	case isa.XOR:
		return a ^ b, 0, nil
	case isa.SHL:
		return a << (b & 31), 0, nil
	case isa.SHR:
		return a >> (b & 31), 0, nil
	case isa.FADD:
		return f32Bits(f32FromBits(a) + f32FromBits(b)), 0, nil
	case isa.FSUB:
		return f32Bits(f32FromBits(a) - f32FromBits(b)), 0, nil
	case isa.FMUL:
		return f32Bits(f32FromBits(a) * f32FromBits(b)), 0, nil
	case isa.FFMA:
		c := f32FromBits(w.readR(in.Src[2], lane))
		return f32Bits(float32(math.FMA(float64(f32FromBits(a)), float64(f32FromBits(b)), float64(c)))), 0, nil
	case isa.DADD:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) + f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DSUB:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) - f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DMUL:
		z := f64Bits(f64FromBits(w.read64(in.Src[0], lane)) * f64FromBits(w.read64(in.Src[1], lane)))
		return uint32(z), uint32(z >> 32), nil
	case isa.DFMA:
		z := f64Bits(math.FMA(f64FromBits(w.read64(in.Src[0], lane)),
			f64FromBits(w.read64(in.Src[1], lane)),
			f64FromBits(w.read64(in.Src[2], lane))))
		return uint32(z), uint32(z >> 32), nil
	case isa.MUFU:
		x := float64(f32FromBits(a))
		var v float64
		switch in.Mod {
		case isa.FnRCP:
			v = 1 / x
		case isa.FnSQRT:
			v = math.Sqrt(x)
		case isa.FnEX2:
			v = math.Exp2(x)
		case isa.FnLG2:
			v = math.Log2(x)
		}
		return f32Bits(float32(v)), 0, nil
	case isa.I2F:
		return f32Bits(float32(int32(a))), 0, nil
	case isa.F2I:
		f := f32FromBits(a)
		if f != f { // NaN
			return 0, 0, nil
		}
		return uint32(int32(f)), 0, nil
	case isa.MOV:
		return b | a, 0, nil // MOV d,s has Src[0]=s; MovI has Src[0]=RZ and imm
	case isa.S2R:
		return m.special(w, isa.SpecialReg(in.Imm), lane), 0, nil
	case isa.SHFL:
		src := lane ^ int(in.Imm&31)
		return w.readR(in.Src[0], src), 0, nil
	case isa.LDG:
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(m.g.Mem) {
			return 0, 0, fmt.Errorf("sm: kernel %s: LDG out of bounds: %d (lane %d)", m.k.Name, addr, lane)
		}
		return m.g.Mem[addr], 0, nil
	case isa.LDS:
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(w.cta.shared) {
			return 0, 0, fmt.Errorf("sm: kernel %s: LDS out of bounds: %d", m.k.Name, addr)
		}
		return w.cta.shared[addr], 0, nil
	case isa.ATOM:
		addr := int(int32(a)) + int(in.Imm)
		if addr < 0 || addr >= len(m.g.Mem) {
			return 0, 0, fmt.Errorf("sm: kernel %s: ATOM out of bounds: %d", m.k.Name, addr)
		}
		old := m.g.Mem[addr]
		val := w.readR(in.Src[1], lane)
		switch in.Mod {
		case isa.OpAdd:
			m.g.Mem[addr] = old + val
		case isa.OpMin:
			if int32(val) < int32(old) {
				m.g.Mem[addr] = val
			}
		case isa.OpMax:
			if int32(val) > int32(old) {
				m.g.Mem[addr] = val
			}
		case isa.OpExch:
			m.g.Mem[addr] = val
		case isa.OpCAS:
			if old == w.readR(in.Src[2], lane) {
				m.g.Mem[addr] = val
			}
		}
		return old, 0, nil
	}
	return 0, 0, fmt.Errorf("sm: kernel %s: unimplemented opcode %v", m.k.Name, in.Op)
}

// traceLane forwards one executed lane to the value tracer.
func (m *machine) traceLane(w *warpState, in *isa.Instr, lane int, result uint64) {
	var a, b, c uint64
	switch in.Op {
	case isa.DADD, isa.DSUB, isa.DMUL:
		a = w.read64(in.Src[0], lane)
		b = w.read64(in.Src[1], lane)
	case isa.DFMA:
		a = w.read64(in.Src[0], lane)
		b = w.read64(in.Src[1], lane)
		c = w.read64(in.Src[2], lane)
	default:
		a = uint64(w.readR(in.Src[0], lane))
		if in.HasImm {
			b = uint64(uint32(in.Imm))
		} else {
			b = uint64(w.readR(in.Src[1], lane))
		}
		if in.Op == isa.IMAD && in.Wide {
			c = w.read64(in.Src[2], lane)
		} else {
			c = uint64(w.readR(in.Src[2], lane))
		}
	}
	m.g.Trace(in.Op, in.Wide, lane, a, b, c, result)
}

func (m *machine) special(w *warpState, sr isa.SpecialReg, lane int) uint32 {
	switch sr {
	case isa.SRTid:
		return uint32(w.idInCTA*isa.WarpSize + lane)
	case isa.SRCtaid:
		return uint32(w.cta.id)
	case isa.SRNTid:
		return uint32(m.k.CTAThreads)
	case isa.SRNCta:
		return uint32(m.k.GridCTAs)
	case isa.SRLane:
		return uint32(lane)
	case isa.SRWarp:
		return uint32(w.idInCTA)
	}
	return 0
}

// writeback commits results, applying the swap-coded register-file
// semantics and any armed pipeline-fault injection.
func (m *machine) writeback(w *warpState, in *isa.Instr, mask uint32, res, resHi *[isa.WarpSize]uint32, wide bool, injectNow bool) {
	if in.Dst == isa.RZ {
		if injectNow {
			m.g.Fault.Applied = true // fault landed in a discarded result
			m.faultCycle = m.cycle
		}
		return
	}
	fp := m.g.Fault
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		trueLo, trueHi := res[lane], resHi[lane]
		lo, hi := trueLo, trueHi
		if injectNow && lane == fp.Lane {
			lo ^= fp.BitMask
			hi ^= fp.BitMaskHi
			fp.Applied = true
			m.faultCycle = m.cycle
		}
		if wide && w.rf != nil && in.Flags&isa.FlagPredicted != 0 {
			// Compute both halves' predicted check bits BEFORE either write
			// lands: the destination pair may overlap a source register
			// (predicted accumulation), and the prediction must see the
			// pre-write residues.
			loChk := m.predictedCheck(w, in, int(in.Dst), lane, trueLo)
			hiChk := m.predictedCheck(w, in, int(in.Dst)+1, lane, trueHi)
			w.rf.WritePredicted(int(in.Dst), lane, lo, loChk)
			w.rf.WritePredicted(int(in.Dst)+1, lane, hi, hiChk)
			w.regs[int(in.Dst)*isa.WarpSize+lane] = lo
			w.regs[(int(in.Dst)+1)*isa.WarpSize+lane] = hi
			continue
		}
		m.writeLane(w, in, int(in.Dst), lane, lo, trueLo)
		if wide {
			m.writeLane(w, in, int(in.Dst)+1, lane, hi, trueHi)
		}
	}
}

// writeLane writes one register of one lane, with the Table II write-back
// semantics: a shadow instruction's write is masked to the ECC check bits;
// a predicted instruction's check bits come from the (error-free)
// prediction pipeline; a propagated move carries the stored ECC word.
func (m *machine) writeLane(w *warpState, in *isa.Instr, reg, lane int, value, trueValue uint32) {
	if w.rf != nil {
		switch {
		case in.Flags&isa.FlagShadow != 0:
			// ECC-only write: architectural data unchanged.
			w.rf.WriteShadow(reg, lane, value)
			return
		case in.Flags&isa.FlagPredicted != 0 && in.Op == isa.MOV && !in.HasImm:
			// End-to-end move propagation (Figure 4): the full stored ECC
			// word rides along; a datapath error corrupts only the data.
			w.rf.PropagateMove(reg, int(in.Src[0]), lane)
			w.rf.WritePredicted(reg, lane, value, w.rf.CheckBitsOf(reg, lane))
		case in.Flags&isa.FlagPredicted != 0:
			// The prediction unit forms check bits from the input residues,
			// independent of the (possibly faulted) main datapath.
			w.rf.WritePredicted(reg, lane, value, m.predictedCheck(w, in, reg, lane, trueValue))
		default:
			w.rf.WriteFull(reg, lane, value)
		}
		w.regs[reg*isa.WarpSize+lane] = value
		return
	}
	if in.Flags&isa.FlagShadow != 0 {
		return // masked write; no architectural data effect
	}
	w.regs[reg*isa.WarpSize+lane] = value
}

// predictedCheck forms the Swap-Predict check bits for one written
// register. For residue organizations and the fixed-point operations the
// paper designed real predictors for (Figure 9), the check bits come from
// the SOURCES' stored residues through the prediction algebra — so a
// pending error on an input register propagates into the predicted check
// bits and stays detectable through arithmetic chains. Everything else
// (logic/shift/floating point — the paper's projected future predictors,
// plus the non-residue organizations) uses the idealized oracle.
func (m *machine) predictedCheck(w *warpState, in *isa.Instr, reg, lane int, trueValue uint32) uint32 {
	r, ok := w.rf.ResidueCode()
	if !ok {
		return w.rf.PredictCheck(trueValue)
	}
	res := func(src isa.Reg) uint32 {
		if src == isa.RZ {
			return 0
		}
		return r.Canon(w.rf.CheckBitsOf(int(src), lane))
	}
	op1 := func() (val uint32, residue uint32) {
		if in.HasImm {
			return uint32(in.Imm), r.Encode(uint32(in.Imm))
		}
		return w.readR(in.Src[1], lane), res(in.Src[1])
	}
	a := w.readR(in.Src[0], lane)
	ra := res(in.Src[0])
	switch in.Op {
	case isa.IADD:
		b, rb := op1()
		cout := (uint64(a)+uint64(b))>>32 != 0
		return r.PredictAdd(ra, rb, false, cout)
	case isa.ISUB:
		b, rb := op1()
		// Datapath computes a + ^b + 1; |^b|_A derives from |b|_A by
		// subtracting from |2^32 - 1|_A (wiring + one EAC add).
		allOnes := r.Sub(r.PowerOfTwoResidue(32), 1)
		rInvB := r.Sub(allOnes, rb)
		cout := (uint64(a)+uint64(^b)+1)>>32 != 0
		return r.PredictSub(ra, rInvB, cout)
	case isa.IMUL:
		b, rb := op1()
		z := uint64(a) * uint64(b)
		rz := r.Mul(ra, rb)
		lo, _ := recodePair(r, rz, z)
		return lo
	case isa.IMAD:
		b, rb := op1()
		if in.Wide {
			c := w.read64(in.Src[2], lane)
			z, cout := madWide(a, b, c)
			lo, hi := r.PredictMAD64(ra, rb, res(in.Src[2]+1), res(in.Src[2]), z, cout)
			if isa.Reg(reg) == in.Dst {
				return r.Canon(lo)
			}
			return r.Canon(hi)
		}
		c := w.readR(in.Src[2], lane)
		z := uint64(a)*uint64(b) + uint64(c)
		rz := r.Add(r.Mul(ra, rb), res(in.Src[2]))
		lo, _ := recodePair(r, rz, z)
		return lo
	}
	// Projected predictors (logic/shift/FP) and moves with immediates.
	return w.rf.PredictCheck(trueValue)
}

// recodePair splits a full-width predicted residue into the written 32-bit
// registers via the Figure 9b recoding encoder.
func recodePair(r ecc.Residue, rz uint32, z uint64) (lo, hi uint32) {
	return r.Canon(r.RecodeLow(rz, uint32(z>>32))), r.Canon(r.RecodeHigh(rz, uint32(z)))
}

// madWide recomputes the wide MAD with its carry-out (the Table III input).
func madWide(a, b uint32, c uint64) (uint64, bool) {
	hi64, lo64 := mulHiLo(uint64(a), uint64(b))
	z := lo64 + c
	carry := uint64(0)
	if z < lo64 {
		carry = 1
	}
	return z, hi64+carry != 0
}

func mulHiLo(x, y uint64) (hi, lo uint64) {
	return bits.Mul64(x, y)
}

func (m *machine) execSetp(w *warpState, in *isa.Instr, mask uint32) {
	var bits uint32
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		a := w.readR(in.Src[0], lane)
		var b uint32
		if in.HasImm {
			b = uint32(in.Imm)
		} else {
			b = w.readR(in.Src[1], lane)
		}
		var t bool
		if in.Op == isa.ISETP {
			x, y := int32(a), int32(b)
			switch in.Mod {
			case isa.CmpEQ:
				t = x == y
			case isa.CmpNE:
				t = x != y
			case isa.CmpLT:
				t = x < y
			case isa.CmpLE:
				t = x <= y
			case isa.CmpGT:
				t = x > y
			case isa.CmpGE:
				t = x >= y
			}
		} else {
			x, y := f32FromBits(a), f32FromBits(b)
			switch in.Mod {
			case isa.CmpEQ:
				t = x == y
			case isa.CmpNE:
				t = x != y
			case isa.CmpLT:
				t = x < y
			case isa.CmpLE:
				t = x <= y
			case isa.CmpGT:
				t = x > y
			case isa.CmpGE:
				t = x >= y
			}
		}
		if t {
			bits |= 1 << uint(lane)
		}
	}
	if in.DstPred >= 0 && in.DstPred < isa.PT {
		w.preds[in.DstPred] = (w.preds[in.DstPred] &^ mask) | bits
	}
}

func (m *machine) execStore(w *warpState, in *isa.Instr, mask uint32) error {
	for lane := 0; lane < isa.WarpSize; lane++ {
		if mask&(1<<uint(lane)) == 0 {
			continue
		}
		addr := int(int32(w.readR(in.Src[0], lane))) + int(in.Imm)
		val := w.readR(in.Src[1], lane)
		if in.Op == isa.STG {
			if addr < 0 || addr >= len(m.g.Mem) {
				return fmt.Errorf("sm: kernel %s: STG out of bounds: %d (lane %d)", m.k.Name, addr, lane)
			}
			m.g.Mem[addr] = val
		} else {
			if addr < 0 || addr >= len(w.cta.shared) {
				return fmt.Errorf("sm: kernel %s: STS out of bounds: %d", m.k.Name, addr)
			}
			w.cta.shared[addr] = val
		}
	}
	return nil
}

func (m *machine) execBranch(w *warpState, in *isa.Instr) error {
	top := w.top()
	curPC := top.pc
	var takenMask uint32
	if in.Unconditional() {
		takenMask = top.mask
	} else {
		bits := w.preds[in.GuardPred]
		if in.GuardNeg {
			bits = ^bits
		}
		takenMask = top.mask & bits
	}
	switch {
	case takenMask == top.mask:
		top.pc = in.Imm
	case takenMask == 0:
		top.pc = curPC + 1
	default:
		fall := top.mask &^ takenMask
		reconv := in.Reconv
		top.pc = reconv // continuation with the full mask
		w.stack = append(w.stack,
			simtEntry{pc: curPC + 1, mask: fall, reconv: reconv},
			simtEntry{pc: in.Imm, mask: takenMask, reconv: reconv})
		if len(w.stack) > 64 {
			return fmt.Errorf("sm: kernel %s: SIMT stack overflow (malformed reconvergence?)", m.k.Name)
		}
	}
	m.popReconverged(w)
	return nil
}

func (m *machine) advancePC(w *warpState) {
	w.top().pc++
	m.popReconverged(w)
}

func (m *machine) popReconverged(w *warpState) {
	for len(w.stack) > 1 {
		t := w.top()
		if t.reconv >= 0 && t.pc == t.reconv {
			w.stack = w.stack[:len(w.stack)-1]
			continue
		}
		break
	}
}

// execExit removes lanes from the warp; when all are gone the warp retires
// (releasing any CTA barrier it would have blocked).
func (m *machine) execExit(w *warpState, mask uint32) {
	for i := range w.stack {
		w.stack[i].mask &^= mask
	}
	for len(w.stack) > 0 && w.top().mask == 0 {
		w.stack = w.stack[:len(w.stack)-1]
	}
	if len(w.stack) == 0 {
		w.done = true
		cta := w.cta
		cta.liveWarps--
		if cta.arrived >= cta.liveWarps && cta.liveWarps > 0 && cta.arrived > 0 {
			for _, ww := range cta.warps {
				ww.atBarrier = false
			}
			cta.arrived = 0
		}
		return
	}
	m.advancePC(w)
	// advancePC moved past EXIT for the remaining (guarded-off) lanes; the
	// pop check above may already have resolved reconvergence.
}

// eccCheckSources runs the register-file decoder over every register source
// of the instruction's active lanes, tallying SwapCodes detections.
func (m *machine) eccCheckSources(w *warpState, in *isa.Instr, mask uint32) error {
	check := func(r isa.Reg) error {
		if r == isa.RZ {
			return nil
		}
		for lane := 0; lane < isa.WarpSize; lane++ {
			if mask&(1<<uint(lane)) == 0 {
				continue
			}
			v, out := w.rf.Read(int(r), lane)
			switch out {
			case core.ReadOK:
			case core.ReadCorrectedStorage:
				m.stats.StorageCorrections++
				w.regs[int(r)*isa.WarpSize+lane] = v
			case core.ReadDUEPipeline:
				m.stats.PipelineDUEs++
				if m.obsm != nil {
					m.obsm.due(m, r, lane)
				}
				if m.cfg.HaltOnDUE {
					return &DUEError{Kernel: m.k.Name, Reg: r, Lane: lane}
				}
			default:
				m.stats.StorageDUEs++
			}
		}
		return nil
	}
	for si, s := range in.Src {
		if si == 1 && in.HasImm {
			continue
		}
		wide := false
		switch in.Op {
		case isa.DADD, isa.DSUB, isa.DMUL:
			wide = si < 2
		case isa.DFMA:
			wide = true
		case isa.IMAD:
			wide = in.Wide && si == 2
		}
		if err := check(s); err != nil {
			return err
		}
		if wide {
			if err := check(s + 1); err != nil {
				return err
			}
		}
	}
	return nil
}
