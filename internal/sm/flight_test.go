package sm_test

import (
	"bytes"
	"reflect"
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/obs/simprof"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

// This file gates the flight recorder (DESIGN.md Section 14): armed on a
// failing launch it must capture a black-box bundle whose decision streams
// are bit-identical at every worker count — per-partition rings are
// partition-local and the merge ring is barrier-ordered, so nothing in them
// depends on scheduling of the host goroutines.

// streams extracts the comparable payload of a recorder: every partition's
// decision ring plus the merge ring, oldest-first.
func streams(fr *simprof.FlightRecorder) ([][]simprof.Decision, []simprof.Decision, error) {
	b, err := simprof.ReadBundle(bytes.NewReader(fr.Bundle()))
	if err != nil {
		return nil, nil, err
	}
	return b.Partitions, b.Merge, nil
}

// TestFlightBundleCycleBudget forces a deterministic failure (a cycle
// budget below the kernel's real cycle count) at several worker counts and
// requires: the recorder stamps the failure, the bundle round-trips, and
// the decision streams are identical across worker counts.
func TestFlightBundleCycleBudget(t *testing.T) {
	w, err := workloads.ByName("lavaMD")
	if err != nil {
		t.Fatal(err)
	}
	k := compiler.MustApply(w.Kernel, compiler.SwapECC)

	var refParts [][]simprof.Decision
	var refMerge []simprof.Decision
	var refMeta simprof.Meta
	for _, workers := range []int{0, 1, 2, 4} {
		cfg := sm.DefaultConfig()
		cfg.Workers = workers
		cfg.MaxCycles = 2000
		g := w.NewGPU(cfg)
		fr := simprof.NewFlightRecorder(0)
		fr.Annotate(w.Name, 0)
		g.Flight = fr
		_, lerr := g.Launch(k)
		if lerr == nil {
			t.Fatalf("workers=%d: cycle budget of 2000 did not trip", workers)
		}
		if !fr.Failed() {
			t.Fatalf("workers=%d: recorder not stamped on launch failure", workers)
		}
		m := fr.Meta()
		if m.Kernel != k.Name || m.Scheme != k.Scheme || m.Workload != "lavaMD" {
			t.Fatalf("workers=%d: bundle identity wrong: %+v", workers, m)
		}
		if m.Reason != lerr.Error() {
			t.Fatalf("workers=%d: reason %q, launch error %q", workers, m.Reason, lerr)
		}
		if len(m.Config) == 0 {
			t.Fatalf("workers=%d: bundle carries no config", workers)
		}
		parts, merge, err := streams(fr)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(merge) == 0 {
			t.Fatalf("workers=%d: merge ring empty on a multi-round launch", workers)
		}
		if workers == 0 {
			refParts, refMerge, refMeta = parts, merge, m
			continue
		}
		if !reflect.DeepEqual(parts, refParts) {
			t.Errorf("workers=%d: partition decision streams diverge from serial run", workers)
		}
		if !reflect.DeepEqual(merge, refMerge) {
			t.Errorf("workers=%d: merge decision stream diverges from serial run", workers)
		}
		if m.Cycle != refMeta.Cycle || m.Reason != refMeta.Reason {
			t.Errorf("workers=%d: failure point (%d, %q) differs from serial (%d, %q)",
				workers, m.Cycle, m.Reason, refMeta.Cycle, refMeta.Reason)
		}
	}
}

// TestFlightBundleNotStampedOnSuccess runs a clean launch with the recorder
// armed: no failure stamp, but the rings must still hold the run's tail.
func TestFlightBundleNotStampedOnSuccess(t *testing.T) {
	w, err := workloads.ByName("bfs")
	if err != nil {
		t.Fatal(err)
	}
	k := compiler.MustApply(w.Kernel, compiler.Baseline)
	cfg := sm.DefaultConfig()
	cfg.Workers = 2
	g := w.NewGPU(cfg)
	fr := simprof.NewFlightRecorder(0)
	g.Flight = fr
	if _, err := g.Launch(k); err != nil {
		t.Fatal(err)
	}
	if fr.Failed() {
		t.Fatal("recorder stamped failed on a clean launch")
	}
	// The rings still hold the tail of the run: armed-but-idle recorders
	// are how the black box is cheap enough to leave on.
	parts, _, err := streams(fr)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, p := range parts {
		n += len(p)
	}
	if n == 0 {
		t.Fatal("armed recorder captured no scheduler decisions")
	}
}

// TestParallelSMDifferentialTelemetry re-runs a slice of the differential
// sweep with BOTH simprof surfaces armed (LaunchProf and FlightRecorder) and
// requires Stats and final memory to stay bit-identical to the bare serial
// run at every worker count — the telemetry must observe the parallel loop,
// never perturb it.
func TestParallelSMDifferentialTelemetry(t *testing.T) {
	for _, name := range []string{"lavaMD", "hspot", "mm"} {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := compiler.MustApply(w.Kernel, compiler.SwapECC)

		bare := sm.DefaultConfig()
		refSt, refMem := launchWith(t, w, k, compiler.SwapECC, bare)

		var refParts [][]simprof.Decision
		var refMerge []simprof.Decision
		for _, workers := range []int{0, 1, 2, 4} {
			cfg := sm.DefaultConfig()
			cfg.Workers = workers
			g := w.NewGPU(cfg)
			prof := &simprof.LaunchProf{}
			fr := simprof.NewFlightRecorder(0)
			g.Prof = prof
			g.Flight = fr
			st, err := g.Launch(k)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if err := w.Verify(g); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(st, refSt) {
				t.Errorf("%s workers=%d: Stats diverge with telemetry armed", name, workers)
			}
			if !reflect.DeepEqual(g.Mem, refMem) {
				t.Errorf("%s workers=%d: memory diverges with telemetry armed", name, workers)
			}
			// The deterministic half of the profile must not depend on the
			// worker count either.
			if prof.Cycles != refSt.Cycles || prof.Rounds == 0 {
				t.Errorf("%s workers=%d: prof cycles=%d rounds=%d, stats cycles=%d",
					name, workers, prof.Cycles, prof.Rounds, refSt.Cycles)
			}
			if got := sm.DefaultConfig().Schedulers; len(prof.Partitions) != got {
				t.Errorf("%s workers=%d: prof has %d partitions, config has %d",
					name, workers, len(prof.Partitions), got)
			}
			parts, merge, err := streams(fr)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if workers == 0 {
				refParts, refMerge = parts, merge
				continue
			}
			if !reflect.DeepEqual(parts, refParts) || !reflect.DeepEqual(merge, refMerge) {
				t.Errorf("%s workers=%d: decision streams diverge from serial run", name, workers)
			}
		}
	}
}
