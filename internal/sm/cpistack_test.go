package sm

import (
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/obs/cpistack"
)

// TestCPIStackPartitionVecAdd: the six CPI-stack components must partition
// the cycle count exactly — every advance of the simulated clock is charged
// to exactly one component. (The headline-sweep version of this invariant,
// over every workload x scheme, lives in internal/harness.)
func TestCPIStackPartitionVecAdd(t *testing.T) {
	const n = 200
	for _, scheme := range []compiler.Scheme{compiler.Baseline, compiler.SWDup, compiler.SwapECC} {
		k := compiler.MustApply(vecAddKernel(n, 4, 64), scheme)
		g := NewGPU(DefaultConfig(), 3*n+64)
		st, err := g.Launch(k)
		if err != nil {
			t.Fatal(err)
		}
		stack := st.CPIStack(k.Name, k.Scheme)
		if stack.Sum() != st.Cycles {
			t.Errorf("%v: components sum to %d, want Cycles = %d (stack %+v)",
				scheme, stack.Sum(), st.Cycles, stack.Comp)
		}
		if stack.Scheme != scheme.String() {
			t.Errorf("stack scheme = %q, want %q", stack.Scheme, scheme)
		}
		if stack.Comp[cpistack.Issue] != st.IssueCycles {
			t.Errorf("issue component = %d, want %d", stack.Comp[cpistack.Issue], st.IssueCycles)
		}
		// Per-class sub-attributions must reconcile with their components.
		var deps int64
		for _, v := range stack.DepsByClass {
			deps += v
		}
		if deps != st.StallCyclesDeps {
			t.Errorf("%v: DepsByClass sums to %d, want %d", scheme, deps, st.StallCyclesDeps)
		}
		var thr int64
		for _, v := range stack.ThrottleByClass {
			thr += v
		}
		if thr != st.StallCyclesThrottle {
			t.Errorf("%v: ThrottleByClass sums to %d, want %d", scheme, thr, st.StallCyclesThrottle)
		}
		if stack.ResidentWarpLimit <= 0 || stack.MaxResidentWarps > stack.ResidentWarpLimit {
			t.Errorf("%v: resident %d exceeds limit %d",
				scheme, stack.MaxResidentWarps, stack.ResidentWarpLimit)
		}
	}
}

// TestCPIStackOccupancyCharge: a register-pressure-capped kernel with CTAs
// queued behind the cap must charge occupancy cycles; the same kernel on an
// unconstrained register file must charge none.
func TestCPIStackOccupancyCharge(t *testing.T) {
	const n = 64
	k := vecAddKernel(n, 16, 64) // 16 CTAs of 2 warps
	k.NumRegs = 40               // 40 regs x 64 threads: regfile caps residency

	capped := DefaultConfig()
	capped.RegFileWords = 40 * 64 * 4 // 4 CTAs resident, 12 waiting
	g := NewGPU(capped, 3*n*16+64)
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st.ResidentWarpLimit >= capped.MaxWarps {
		t.Fatalf("test premise broken: limit %d not capped", st.ResidentWarpLimit)
	}
	if st.StallCyclesOccupancy == 0 {
		t.Error("occupancy-capped latency-bound kernel charged no occupancy cycles")
	}

	free := DefaultConfig()
	free.RegFileWords = 1 << 24
	g2 := NewGPU(free, 3*n*16+64)
	st2, err := g2.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if st2.StallCyclesOccupancy != 0 {
		t.Errorf("uncapped run charged %d occupancy cycles, want 0", st2.StallCyclesOccupancy)
	}
	if got := st2.CPIStack(k.Name, ""); got.Sum() != st2.Cycles {
		t.Errorf("uncapped stack sums to %d, want %d", got.Sum(), st2.Cycles)
	}
}
