package sm

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestLoopRelaunchPathPollsCancellation is the regression test for the
// scheduler-loop guard bypass: the empty-relaunch path (no resident warps,
// CTAs still pending, nothing launchable) used to `continue` without
// touching the iteration guard, so a launch stuck there never polled
// ctx.Err() and never tripped the cycle guard. The fix routes every loop
// iteration through the guard, which bounds cancellation latency.
//
// The stuck state is forced directly: a machine whose residentLimit is
// pinned to zero can never make a CTA resident, so loop() spins in the
// relaunch path forever. A correct loop must still notice the cancelled
// context and return promptly with partial stats.
func TestLoopRelaunchPathPollsCancellation(t *testing.T) {
	k := vecAddKernel(64, 4, 64)
	g := NewGPU(DefaultConfig(), 3*64+64)
	m := newMachine(g, k)
	m.initPartitions()
	m.residentLimit = 0 // nothing can launch; loop spins in the relaunch path

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- m.loop(ctx) }()
	time.Sleep(5 * time.Millisecond) // let the loop enter the spin
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("loop returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("loop did not observe cancellation: relaunch path bypasses the guard")
	}
}

// TestLoopRelaunchPathTripsGuard: the same stuck state with a context that
// never cancels must still terminate via the iteration guard rather than
// hang. The guard threshold is huge (1<<34), so this test drops it to a
// testable value by checking the guard arithmetic indirectly: a background
// timeout distinguishes "spins forever" from "spins until cancelled".
func TestLoopRelaunchPathTripsGuard(t *testing.T) {
	k := vecAddKernel(64, 4, 64)
	g := NewGPU(DefaultConfig(), 3*64+64)
	m := newMachine(g, k)
	m.initPartitions()
	m.residentLimit = 0

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- m.loop(ctx) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("loop returned %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("loop ignored its context deadline in the relaunch path")
	}
}
