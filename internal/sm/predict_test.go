package sm

import (
	"testing"

	"swapcodes/internal/compiler"
	"swapcodes/internal/core"
	"swapcodes/internal/isa"
)

// predictKernel: a chain of predictable fixed-point arithmetic ending in a
// store, single warp (dyn index == pc).
func predictKernel() *isa.Kernel {
	a := compiler.NewAsm("predict")
	const (
		rTid, rA, rB, rC = isa.Reg(0), isa.Reg(1), isa.Reg(2), isa.Reg(3)
		rW               = isa.Reg(6) // pair 6,7
		rZ               = isa.Reg(8) // pair 8,9
	)
	a.S2R(rTid, isa.SRTid)
	a.IAddI(rA, rTid, 1000)    // pc 1: predicted IADD
	a.ISub(rB, rA, rTid)       // pc 2: predicted ISUB
	a.IMul(rC, rB, rA)         // pc 3: predicted IMUL
	a.IMad(rC, rC, rA, rB)     // pc 4: predicted IMAD (accumulating)
	a.MovI(rW, 7)              // pc 5
	a.MovI(rW+1, 1)            // pc 6
	a.IMadWide(rZ, rA, rC, rW) // pc 7: predicted wide MAD
	a.IAdd(rC, rZ, rZ+1)       // pc 8: consume both halves
	a.Stg(rTid, 0, rC)         // pc 9
	a.Exit()
	return a.MustBuild(1, 32, 0)
}

// TestResiduePredictionCleanRun: under a residue register file, every
// predicted write-back's check bits — computed ONLY from the sources'
// stored residues via the Figure 9 algebra — decode clean on every read.
func TestResiduePredictionCleanRun(t *testing.T) {
	for _, org := range []core.Organization{core.OrgMod3, core.OrgMod7, core.OrgMod127} {
		k := compiler.MustApply(predictKernel(), compiler.SwapPredictMAD)
		cfg := DefaultConfig()
		cfg.ECC = true
		cfg.Org = org
		g := NewGPU(cfg, 64)
		st, err := g.Launch(k)
		if err != nil {
			t.Fatalf("%v: %v", org, err)
		}
		if st.PipelineDUEs != 0 {
			t.Fatalf("%v: %d false-positive DUEs from real residue prediction", org, st.PipelineDUEs)
		}
		for i := 0; i < 32; i++ {
			a := uint32(i) + 1000
			b := a - uint32(i)
			c := b * a
			c = c*a + b
			z := uint64(a)*uint64(c) + (1<<32 + 7)
			want := uint32(z) + uint32(z>>32)
			if g.Mem[i] != want {
				t.Fatalf("%v: out[%d] = %#x, want %#x", org, i, g.Mem[i], want)
			}
		}
	}
}

// TestResiduePredictionDetectsDatapathFault: the prediction pipeline is
// independent of the main datapath, so a fault in a predicted instruction's
// result is caught by the register-file decoder at the consuming read.
func TestResiduePredictionDetectsDatapathFault(t *testing.T) {
	k := compiler.MustApply(predictKernel(), compiler.SwapPredictMAD)
	cfg := DefaultConfig()
	cfg.ECC = true
	cfg.Org = core.OrgMod7
	g := NewGPU(cfg, 64)
	// Fault the predicted IMUL's result (dyn 3 after transformation? find it).
	target := int64(-1)
	for pc, in := range k.Code {
		if in.Op == isa.IMUL {
			target = int64(pc)
			break
		}
	}
	g.Fault = &FaultPlan{TargetDynInstr: target, Lane: 11, BitMask: 1 << 6}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Fault.Applied {
		t.Fatal("fault not applied")
	}
	if st.PipelineDUEs == 0 {
		t.Fatal("datapath fault on a predicted op went undetected")
	}
}

// TestResiduePredictionPropagatesPendingErrors: a pending error on an INPUT
// register flows through the prediction algebra — the corrupted input's
// wrong residue yields a mismatched predicted check for the output, so the
// error chain stays detectable (it is never laundered into a consistent
// codeword).
func TestResiduePredictionPropagatesPendingErrors(t *testing.T) {
	a := compiler.NewAsm("chain")
	const rTid, rX, rY = isa.Reg(0), isa.Reg(1), isa.Reg(2)
	a.S2R(rTid, isa.SRTid)
	a.IAddI(rX, rTid, 3) // predicted producer
	a.IAddI(rY, rX, 4)   // predicted consumer
	a.Stg(rTid, 0, rY)
	a.Exit()
	k := compiler.MustApply(a.MustBuild(1, 32, 0), compiler.SwapPredictMAD)
	cfg := DefaultConfig()
	cfg.ECC = true
	cfg.Org = core.OrgMod7
	g := NewGPU(cfg, 64)
	// Fault the producer: rX's data is corrupted; its predicted check bits
	// (from rTid's residue) encode the TRUE value.
	target := int64(-1)
	seen := 0
	for pc, in := range k.Code {
		if in.Op == isa.IADD {
			if seen == 0 {
				target = int64(pc)
			}
			seen++
		}
	}
	g.Fault = &FaultPlan{TargetDynInstr: target, Lane: 4, BitMask: 1 << 2}
	st, err := g.Launch(k)
	if err != nil {
		t.Fatal(err)
	}
	// The consumer read of rX flags; AND the consumer's own predicted
	// output check (built from rX's pending-true residue vs corrupted data)
	// keeps the store value detectable too — at least one DUE, and the
	// corrupted value must never end up in a CONSISTENT codeword.
	if st.PipelineDUEs == 0 {
		t.Fatal("pending input error laundered by the predictor")
	}
}
