package sm

import (
	"testing"

	"swapcodes/internal/obs/simprof"
)

// TestPartitionAssignmentBalance pins the launchCTA placement rule: each
// warp goes to the currently least-loaded partition (ties to the lowest
// index), so within a single residency wave the per-partition warp counts
// never spread by more than one, every warp lands somewhere, and the
// assignment is identical at any worker count. Observed through
// simprof.LaunchProf.WarpsAssigned, which counts exactly these placements.
func TestPartitionAssignmentBalance(t *testing.T) {
	const n = 1 << 12
	cases := []struct {
		scheds, grid, cta int
	}{
		{2, 3, 128},
		{2, 1, 32},
		{4, 5, 128},
		{4, 2, 96}, // 3 warps/CTA: odd totals across 4 partitions
		{8, 7, 64},
		{8, 2, 256},
	}
	for _, tc := range cases {
		k := vecAddKernel(n, tc.grid, tc.cta)
		warpsPerCTA := (tc.cta + 31) / 32
		total := tc.grid * warpsPerCTA

		var ref []int64
		for _, workers := range []int{0, tc.scheds} {
			cfg := DefaultConfig()
			cfg.Schedulers = tc.scheds
			cfg.Workers = workers
			prof := &simprof.LaunchProf{}
			g := NewGPU(cfg, 3*n+64)
			g.Prof = prof
			if _, err := g.Launch(k); err != nil {
				t.Fatalf("scheds=%d grid=%d cta=%d: %v", tc.scheds, tc.grid, tc.cta, err)
			}
			if len(prof.Partitions) != tc.scheds {
				t.Fatalf("scheds=%d: prof has %d partitions", tc.scheds, len(prof.Partitions))
			}
			var sum, min, max int64
			min = int64(total) + 1
			counts := make([]int64, tc.scheds)
			for i, p := range prof.Partitions {
				counts[i] = p.WarpsAssigned
				sum += p.WarpsAssigned
				if p.WarpsAssigned < min {
					min = p.WarpsAssigned
				}
				if p.WarpsAssigned > max {
					max = p.WarpsAssigned
				}
			}
			if sum != int64(total) {
				t.Errorf("scheds=%d grid=%d cta=%d workers=%d: %d warps assigned, launched %d",
					tc.scheds, tc.grid, tc.cta, workers, sum, total)
			}
			// Single wave (the whole grid is resident at once), so the
			// least-loaded rule bounds the spread at one warp.
			if max-min > 1 {
				t.Errorf("scheds=%d grid=%d cta=%d workers=%d: assignment spread %d (counts %v), want <=1",
					tc.scheds, tc.grid, tc.cta, workers, max-min, counts)
			}
			// Ties break to the lowest index: the extra warps of an uneven
			// split sit in a prefix of the partition list.
			for i := 1; i < len(counts); i++ {
				if counts[i] > counts[i-1] {
					t.Errorf("scheds=%d grid=%d cta=%d workers=%d: counts %v not non-increasing (tie-break to lowest index)",
						tc.scheds, tc.grid, tc.cta, workers, counts)
					break
				}
			}
			if ref == nil {
				ref = counts
			} else {
				for i := range counts {
					if counts[i] != ref[i] {
						t.Errorf("scheds=%d grid=%d cta=%d: assignment differs between worker counts: %v vs %v",
							tc.scheds, tc.grid, tc.cta, counts, ref)
						break
					}
				}
			}
		}
	}
}
