package sm

import "sync"

// parRunner runs phase A of every round on a fixed set of worker
// goroutines. Partitions are dealt to workers round-robin at startup and
// never migrate, so each partition's state is only ever touched by one
// goroutine during phase A (and by the barrier thread between rounds, with
// the channel handshake providing the happens-before edges). Which worker
// runs which partition cannot affect results: phase A is order-free by
// construction and the barrier merges in partition-index order.
type parRunner struct {
	m     *machine
	start []chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
}

func startParRunner(m *machine, workers int) *parRunner {
	r := &parRunner{
		m:     m,
		start: make([]chan struct{}, workers),
		done:  make(chan struct{}, workers),
	}
	for i := range r.start {
		r.start[i] = make(chan struct{}, 1)
	}
	for i := 0; i < workers; i++ {
		r.wg.Add(1)
		go r.worker(i, workers)
	}
	return r
}

func (r *parRunner) worker(idx, workers int) {
	defer r.wg.Done()
	for range r.start[idx] {
		for pi := idx; pi < len(r.m.parts); pi += workers {
			r.m.parts[pi].step()
		}
		r.done <- struct{}{}
	}
}

// round runs one phase A across all workers and waits for completion.
func (r *parRunner) round() {
	for _, ch := range r.start {
		ch <- struct{}{}
	}
	for range r.start {
		<-r.done
	}
}

// stop shuts the workers down; the runner cannot be reused afterwards.
func (r *parRunner) stop() {
	for _, ch := range r.start {
		close(ch)
	}
	r.wg.Wait()
}
