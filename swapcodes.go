// Package swapcodes is a self-contained reproduction of "SwapCodes: Error
// Codes for Hardware-Software Cooperative GPU Pipeline Error Detection"
// (Sullivan et al., MICRO 2018): error codes, the SwapCodes register-file
// contract, a protecting backend compiler, a SIMT GPU simulator, gate-level
// fault injection, and the paper's full evaluation harness.
//
// This top-level package is the public facade: it re-exports the pieces a
// downstream user composes, so the whole flow is importable from one path:
//
//	base := swapcodes.MustParseKernel(src)             // or the Asm DSL
//	prot, _ := swapcodes.Protect(base, swapcodes.SwapECC)
//	cfg := swapcodes.DefaultConfig()
//	cfg.ECC = true
//	gpu := swapcodes.NewGPU(cfg, 1<<16)
//	stats, _ := gpu.Launch(prot)
//
// The implementation packages remain importable directly (swapcodes/internal/...)
// from within this module; see README.md for the architecture map.
package swapcodes

import (
	"swapcodes/internal/compiler"
	"swapcodes/internal/core"
	"swapcodes/internal/ecc"
	"swapcodes/internal/harness"
	"swapcodes/internal/isa"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

// ---- Kernels and the ISA ----

// Kernel is a compiled device function plus its launch geometry.
type Kernel = isa.Kernel

// Instr is one machine instruction.
type Instr = isa.Instr

// Reg names an architectural register; RZ is the hardwired zero.
type Reg = isa.Reg

// RZ is the zero register.
const RZ = isa.RZ

// Asm is the kernel assembler DSL.
type Asm = compiler.Asm

// NewAsm starts a new kernel in the DSL.
func NewAsm(name string) *Asm { return compiler.NewAsm(name) }

// ParseKernel reads the textual assembly syntax (see compiler.Parse).
func ParseKernel(src string) (*Kernel, error) { return compiler.Parse(src) }

// MustParseKernel is ParseKernel for known-good sources.
func MustParseKernel(src string) *Kernel { return compiler.MustParse(src) }

// FormatKernel renders a kernel in the textual syntax; the output parses
// back to a structurally identical kernel.
func FormatKernel(k *Kernel) string { return compiler.Format(k) }

// ---- Protection schemes ----

// Scheme identifies a protection configuration.
type Scheme = compiler.Scheme

// The protection schemes of the paper's evaluation.
const (
	// Baseline is the un-duplicated program.
	Baseline = compiler.Baseline
	// SWDup is software-enforced intra-thread duplication with checking.
	SWDup = compiler.SWDup
	// SwapECC is the paper's core contribution (Section III-A).
	SwapECC = compiler.SwapECC
	// SwapPredictAddSub adds fixed-point add/sub check-bit prediction.
	SwapPredictAddSub = compiler.SwapPredictAddSub
	// SwapPredictMAD additionally predicts multiply and MAD.
	SwapPredictMAD = compiler.SwapPredictMAD
	// SwapPredictOtherFxP / FpAddSub / FpMAD are the Figure 16 projections.
	SwapPredictOtherFxP = compiler.SwapPredictOtherFxP
	// SwapPredictFpAddSub adds floating-point add/sub prediction.
	SwapPredictFpAddSub = compiler.SwapPredictFpAddSub
	// SwapPredictFpMAD adds floating-point multiply/MAD prediction.
	SwapPredictFpMAD = compiler.SwapPredictFpMAD
	// InterThread is warp-splitting inter-thread duplication (Section V).
	InterThread = compiler.InterThread
	// InterThreadNoCheck is its checking-free theoretical variant.
	InterThreadNoCheck = compiler.InterThreadNoCheck
	// SInRGSig models the HW-Sig-SRIV comparison point of Section VI.
	SInRGSig = compiler.SInRGSig
)

// Protect applies a protection scheme to a kernel.
func Protect(k *Kernel, s Scheme) (*Kernel, error) { return compiler.Apply(k, s) }

// ProtectOpts is Protect with ablation options (compiler.Opts).
func ProtectOpts(k *Kernel, s Scheme, o compiler.Opts) (*Kernel, error) {
	return compiler.ApplyOpts(k, s, o)
}

// ---- The simulated GPU ----

// Config is the SM configuration; GPU the device; Stats a launch summary.
type (
	Config = sm.Config
	GPU    = sm.GPU
	Stats  = sm.Stats
)

// FaultPlan arms single-event pipeline error injection on a GPU.
type FaultPlan = sm.FaultPlan

// DefaultConfig returns the Pascal-class baseline configuration.
func DefaultConfig() Config { return sm.DefaultConfig() }

// NewGPU allocates a device with the given global memory size in words.
func NewGPU(cfg Config, memWords int) *GPU { return sm.NewGPU(cfg, memWords) }

// ---- Error codes and the register-file contract ----

// Code is a systematic register-file error code; Corrector adds correction.
type (
	Code      = ecc.Code
	Corrector = ecc.Corrector
)

// Residue is a low-cost residue code (modulus 2^a - 1).
type Residue = ecc.Residue

// NewResidue returns the low-cost residue code with a check bits (2..8).
func NewResidue(a int) Residue { return ecc.NewResidue(a) }

// NewHsiao returns the (39,32) Hsiao SEC-DED code.
func NewHsiao() *ecc.Hsiao { return ecc.NewHsiao() }

// NewSECDEDDP returns the SEC-DED-DP construction (Section III-B).
func NewSECDEDDP() *ecc.DPCode { return ecc.NewSECDEDDP() }

// NewSECDP returns the SEC-DP construction (Section III-B).
func NewSECDP() *ecc.DPCode { return ecc.NewSECDP() }

// Organization selects the register-file code + reporting scheme.
type Organization = core.Organization

// Register-file organizations.
const (
	OrgSECDEDDP = core.OrgSECDEDDP
	OrgSECDP    = core.OrgSECDP
	OrgTED      = core.OrgTED
	OrgParity   = core.OrgParity
	OrgMod3     = core.OrgMod3
	OrgMod127   = core.OrgMod127
)

// RegFile is a SwapCodes-protected register file (the paper's contribution
// as a standalone component).
type RegFile = core.RegFile

// NewRegFile allocates a protected register file.
func NewRegFile(org Organization, numRegs, lanes int) *RegFile {
	return core.NewRegFile(org, numRegs, lanes)
}

// ---- Workloads and experiments ----

// Workload bundles an evaluation kernel with its data and verifier.
type Workload = workloads.Workload

// Workloads returns the paper's 15 evaluation programs.
func Workloads() []*Workload { return workloads.All() }

// WorkloadByName looks up one workload.
func WorkloadByName(name string) (*Workload, error) { return workloads.ByName(name) }

// RunPerf sweeps every workload under the given schemes (Figures 12/15/16);
// see internal/harness for the per-figure helpers and renderers.
func RunPerf(schemes []Scheme, verify bool) (*harness.PerfResult, error) {
	return harness.RunPerf(schemes, verify)
}

// RunInjection runs the gate-level error-injection campaign of Figures
// 10/11 with the given number of operand tuples per arithmetic unit.
func RunInjection(tuples int, seed int64) (*harness.InjectionResult, error) {
	return harness.RunInjection(tuples, seed)
}
