// Command swapsim runs one workload kernel under one protection scheme on
// the simulated SM and prints cycles, instruction mix, and (optionally) the
// outcome of an injected pipeline error under the SwapCodes register file.
//
// Usage:
//
//	swapsim -workload lavaMD -scheme swap-ecc
//	swapsim -workload mm -scheme sw-dup -fault 120 -lane 3 -bit 9
//	swapsim -file kernel.sasm -scheme swap-ecc -mem 65536
//	swapsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"swapcodes/internal/compiler"
	"swapcodes/internal/isa"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

var schemeNames = map[string]compiler.Scheme{
	"baseline":       compiler.Baseline,
	"sw-dup":         compiler.SWDup,
	"swap-ecc":       compiler.SwapECC,
	"pre-addsub":     compiler.SwapPredictAddSub,
	"pre-mad":        compiler.SwapPredictMAD,
	"pre-otherfxp":   compiler.SwapPredictOtherFxP,
	"pre-fp-addsub":  compiler.SwapPredictFpAddSub,
	"pre-fp-mad":     compiler.SwapPredictFpMAD,
	"inter":          compiler.InterThread,
	"inter-no-check": compiler.InterThreadNoCheck,
}

func main() {
	name := flag.String("workload", "lavaMD", "workload name (see -list)")
	file := flag.String("file", "", "run a kernel from a .sasm text file instead of a built-in workload")
	memWords := flag.Int("mem", 1<<16, "global memory words when running a .sasm file")
	schemeName := flag.String("scheme", "swap-ecc", "protection scheme: "+strings.Join(schemeKeys(), " "))
	list := flag.Bool("list", false, "list workloads and exit")
	fault := flag.Int64("fault", -1, "dynamic warp-instruction index at which to inject a pipeline error")
	lane := flag.Int("lane", 0, "faulted lane")
	bit := flag.Int("bit", 7, "faulted result bit")
	disas := flag.Bool("disas", false, "print the transformed kernel")
	optimize := flag.Bool("O", false, "run dead-code elimination and the list scheduler after the protection pass")
	flag.Parse()

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-9s grid=%3d cta=%4d regs=%2d shared=%d\n",
				w.Name, w.Kernel.GridCTAs, w.Kernel.CTAThreads, w.Kernel.NumRegs, w.Kernel.SharedWords)
		}
		return
	}
	scheme, ok := schemeNames[*schemeName]
	if !ok {
		fail(fmt.Errorf("unknown scheme %q (want one of %s)", *schemeName, strings.Join(schemeKeys(), ", ")))
	}
	var w *workloads.Workload
	var base *isa.Kernel
	if *file != "" {
		src, err := os.ReadFile(*file)
		fail(err)
		base, err = compiler.Parse(string(src))
		fail(err)
	} else {
		var err error
		w, err = workloads.ByName(*name)
		fail(err)
		base = w.Kernel
	}
	k, err := compiler.ApplyOpts(base, scheme, compiler.Opts{DCE: *optimize, Schedule: *optimize})
	fail(err)
	if *disas {
		for pc, in := range k.Code {
			fmt.Printf("%4d: %v\n", pc, in)
		}
	}
	cfg := sm.DefaultConfig()
	if *fault >= 0 {
		cfg.ECC = true
	}
	var g *sm.GPU
	if w != nil {
		g = w.NewGPU(cfg)
	} else {
		g = sm.NewGPU(cfg, *memWords)
	}
	if *fault >= 0 {
		g.Fault = &sm.FaultPlan{TargetDynInstr: *fault, Lane: *lane, BitMask: 1 << uint(*bit%32)}
	}
	st, err := g.Launch(k)
	fail(err)
	var verifyErr error
	if w != nil {
		verifyErr = w.Verify(g)
	}

	fmt.Printf("workload    %s under %v\n", k.Name, scheme)
	fmt.Printf("cycles      %d\n", st.Cycles)
	fmt.Printf("warp instrs %d (IPC %.2f)\n", st.DynWarpInstrs, st.IPC())
	fmt.Printf("occupancy   %d resident warps (max)\n", st.MaxResidentWarps)
	fmt.Printf("stalls      deps=%d throttle=%d barrier=%d empty=%d (failed issue slots)\n",
		st.StallDeps, st.StallThrottle, st.StallBarrier, st.StallNoWarp)
	fmt.Printf("classes    ")
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		if st.PerClass[cl] > 0 {
			fmt.Printf(" %v=%d", cl, st.PerClass[cl])
		}
	}
	fmt.Println()
	fmt.Printf("categories ")
	for cat := isa.CatNotEligible; cat <= isa.CatChecking; cat++ {
		if st.PerCat[cat] > 0 {
			fmt.Printf(" %v=%d", cat, st.PerCat[cat])
		}
	}
	fmt.Println()
	if *fault >= 0 {
		fmt.Printf("fault       applied=%v\n", g.Fault.Applied)
		fmt.Printf("detection   pipeline DUEs=%d, software trap=%v\n", st.PipelineDUEs, st.Trapped)
	}
	switch {
	case verifyErr != nil:
		fmt.Printf("output      CORRUPTED: %v\n", verifyErr)
	case w != nil:
		fmt.Printf("output      verified correct\n")
	}
}

func schemeKeys() []string {
	out := make([]string, 0, len(schemeNames))
	for k := range schemeNames {
		out = append(out, k)
	}
	// stable-ish order for help text
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapsim:", err)
		os.Exit(1)
	}
}
