// Command swapsim runs one workload kernel under one or more protection
// schemes on the simulated SM and prints cycles, instruction mix, and
// (optionally) the outcome of an injected pipeline error under the
// SwapCodes register file.
//
// Usage:
//
//	swapsim -workload lavaMD -scheme swap-ecc
//	swapsim -workload mm -scheme baseline,sw-dup,swap-ecc -workers 4
//	swapsim -workload bfs -scheme swap-ecc -mem-model sectored
//	swapsim -workload mm -scheme sw-dup -fault 120 -lane 3 -bit 9
//	swapsim -workload mm -scheme sw-dup -fault 120 -lane -1 -bit -1 -seed 7
//	swapsim -file kernel.sasm -scheme swap-ecc -mem 65536
//	swapsim -workload mm -scheme sw-dup -serve :9090 -metrics run.json
//	swapsim -workload lavaMD -scheme swap-ecc -flight /tmp/black-box.jsonl
//	swapsim -submit localhost:9090 -scheme sw-dup,swap-ecc
//	swapsim -list
//
// With a comma-separated -scheme list the runs execute in parallel on an
// engine pool (-workers, default all cores) and are reported in list order;
// the simulator is deterministic, so the numbers match serial runs exactly.
// With -lane -1 or -bit -1 the faulted lane/bit are drawn from -seed.
// With -submit the -scheme sweep runs as a perf job on a swapserve (or is
// answered from its content-addressed cache) instead of simulating locally.
// With -flight each launch runs under the flight recorder (DESIGN.md §14):
// if a scheme fails to launch, or its output mismatches without a
// deliberately injected fault, the black-box bundle of scheduler decisions
// is written to the given path for serial replay.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"swapcodes/internal/compiler"
	"swapcodes/internal/engine"
	"swapcodes/internal/harness"
	"swapcodes/internal/isa"
	"swapcodes/internal/jobs"
	"swapcodes/internal/obs"
	"swapcodes/internal/obs/simprof"
	"swapcodes/internal/sm"
	"swapcodes/internal/workloads"
)

type runOpts struct {
	name, file string
	memWords   int
	fault      int64
	lane, bit  int
	smWorkers  int
	memModel   string
	disas      bool
	optimize   bool
	rec        *obs.Recorder
	flight     *flightSink
	log        *slog.Logger
}

// flightSink writes the first failing launch's flight-recorder bundle to the
// -flight path. One file per run: parallel scheme sweeps race to the first
// failure and later ones only log.
type flightSink struct {
	path string
	log  *slog.Logger
	once sync.Once
}

// dump persists the bundle if the recorder actually captured a failure.
func (s *flightSink) dump(fr *simprof.FlightRecorder) {
	if s == nil || fr == nil || !fr.Failed() {
		return
	}
	s.once.Do(func() {
		if err := os.WriteFile(s.path, fr.Bundle(), 0o644); err != nil {
			s.log.Error("flight bundle write failed",
				slog.String("path", s.path), slog.String("err", err.Error()))
			return
		}
		s.log.Info("flight bundle written", slog.String("path", s.path),
			slog.String("reason", fr.Meta().Reason))
	})
}

func main() {
	name := flag.String("workload", "lavaMD", "workload name (see -list)")
	file := flag.String("file", "", "run a kernel from a .sasm text file instead of a built-in workload")
	memWords := flag.Int("mem", 1<<16, "global memory words when running a .sasm file")
	schemeList := flag.String("scheme", "swap-ecc", "comma-separated protection schemes: "+strings.Join(harness.SchemeNames(), " "))
	workers := flag.Int("workers", 0, "engine worker count for multi-scheme runs (0 = all cores)")
	smWorkers := flag.Int("sm-workers", 0, "SM-simulator scheduler workers per launch (0 = serial; results are bit-identical at any count; fault/trace runs pin in-order)")
	memModel := flag.String("mem-model", "", "SM memory timing model: off (flat latency, the default) or sectored (L1/MSHR/L2/DRAM hierarchy with memory CPI attribution)")
	seed := flag.Int64("seed", 1, "random seed for -lane -1 / -bit -1 fault-site selection")
	list := flag.Bool("list", false, "list workloads and exit")
	fault := flag.Int64("fault", -1, "dynamic warp-instruction index at which to inject a pipeline error")
	lane := flag.Int("lane", 0, "faulted lane (-1: draw from -seed)")
	bit := flag.Int("bit", 7, "faulted result bit (-1: draw from -seed)")
	disas := flag.Bool("disas", false, "print the transformed kernel")
	optimize := flag.Bool("O", false, "run dead-code elimination and the list scheduler after the protection pass")
	flight := flag.String("flight", "", "arm the flight recorder; on a failed or corrupted run, write the JSONL black-box bundle to this file")
	metricsOut := flag.String("metrics", "", "write run metrics to this file (.json, .csv, anything else: aligned table)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file, loadable in Perfetto / chrome://tracing")
	metricsInterval := flag.Duration("metrics-interval", 0, "print a progress line to stderr at this interval (e.g. 2s)")
	serve := flag.String("serve", "", "serve live observability on this address (GET /metrics Prometheus text, /runs JSON, /debug/pprof)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no limit); partial results are reported")
	submit := flag.String("submit", "", "submit a -scheme performance sweep to a running swapserve at this base URL instead of simulating locally")
	tenant := flag.String("tenant", "", "tenant fairness key for -submit (empty = default tenant)")
	traceParent := flag.String("traceparent", "", "W3C traceparent (or bare 32-hex trace ID) stamped on -submit jobs; empty mints one per submission")
	logLevel := flag.String("log-level", "info", "stderr diagnostics level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "stderr diagnostics format: json or text")
	flag.Parse()

	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fail(err)
	}
	log, err := obs.NewLogger(os.Stderr, *logFormat, level, nil)
	if err != nil {
		fail(err)
	}

	if *submit != "" {
		fail(submitPerf(log, *submit, *tenant, *traceParent, strings.Split(*schemeList, ",")))
		return
	}

	if *list {
		for _, w := range workloads.All() {
			fmt.Printf("%-9s grid=%3d cta=%4d regs=%2d shared=%d\n",
				w.Name, w.Kernel.GridCTAs, w.Kernel.CTAThreads, w.Kernel.NumRegs, w.Kernel.SharedWords)
		}
		return
	}

	schemes, err := harness.ParseSchemes(strings.Split(*schemeList, ","))
	if err != nil {
		fail(err)
	}
	opts := runOpts{name: *name, file: *file, memWords: *memWords,
		fault: *fault, lane: *lane, bit: *bit, smWorkers: *smWorkers,
		memModel: *memModel, disas: *disas, optimize: *optimize, log: log}
	if *flight != "" {
		opts.flight = &flightSink{path: *flight, log: log}
	}
	if *fault >= 0 && (*lane < 0 || *bit < 0) {
		rng := rand.New(rand.NewSource(*seed))
		if *lane < 0 {
			opts.lane = rng.Intn(32)
		}
		if *bit < 0 {
			opts.bit = rng.Intn(32)
		}
		log.Info("fault site drawn", slog.Int64("seed", *seed),
			slog.Int("lane", opts.lane), slog.Int("bit", opts.bit))
	}

	// One recorder serves all schemes: each launch gets its own trace
	// process (sm:<kernel>, sm:<kernel>#2, ...) and the registry aggregates
	// across them.
	if *metricsOut != "" || *traceOut != "" || *metricsInterval > 0 || *serve != "" {
		opts.rec = obs.NewRecorder()
	}
	fail(run(schemes, opts, *workers, *seed, *timeout, *serve, *metricsInterval, *metricsOut, *traceOut))
}

// run owns the whole simulation lifecycle so its defers fire on every exit:
// the metrics/trace flush and the -serve shutdown happen on success, on
// cancellation (Ctrl-C, -timeout), on a failed scheme, and during a panic
// unwind — a crashed run still leaves its partial observations on disk.
func run(schemes []compiler.Scheme, opts runOpts, workers int, seed int64,
	timeout time.Duration, serve string, metricsInterval time.Duration,
	metricsOut, traceOut string) (err error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	pool := engine.New(workers)
	pool.SetObs(opts.rec)
	// The flush runs deferred — and exactly once — so partial observations
	// survive cancellation, failures, and panics.
	flusher := &obs.FileFlusher{Rec: opts.rec, MetricsPath: metricsOut, TracePath: traceOut,
		Logf: func(path string) { opts.log.Info("artifact written", slog.String("path", path)) }}
	defer func() {
		if ferr := flusher.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if serve != "" {
		srv, serr := obs.StartConfigured(obs.ServerConfig{
			Addr: serve, Registry: opts.rec.Registry(),
			Runs:   func() any { return pool.Tracker().Snapshot() },
			Logger: opts.log,
		})
		if serr != nil {
			return serr
		}
		opts.log.Info("serving observability", slog.String("url", srv.URL()))
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if serr := srv.Shutdown(sctx); serr != nil && err == nil {
				err = serr
			}
		}()
	}
	if len(schemes) > 1 {
		opts.log.Info("parallel sweep", slog.Int("workers", pool.Workers()),
			slog.Int64("seed", seed), slog.Int("schemes", len(schemes)))
	}
	stopProgress := obs.StartProgress(os.Stderr, metricsInterval, func() string {
		snap := pool.Tracker().Snapshot()
		return fmt.Sprintf("swapsim: %s; sm cycles=%d",
			snap.String(), opts.rec.Registry().SumCounters("sm.cycles"))
	})
	reports, err := engine.Map(ctx, pool, len(schemes),
		func(ctx context.Context, i int) (string, error) {
			return runScheme(ctx, schemes[i], opts)
		})
	stopProgress()
	for _, r := range reports {
		if r != "" {
			fmt.Print(r)
		}
	}
	// A stopped run still reports: the deferred flush leaves a coherent
	// partial trace (finalize flushes the tail window and closes live warp
	// spans) and partial counters.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		opts.log.Warn("cancelled; reporting partial results")
	}
	return err
}

// runScheme compiles, runs, and verifies one scheme, returning the full
// report as a string so parallel runs never interleave output.
func runScheme(ctx context.Context, scheme compiler.Scheme, o runOpts) (string, error) {
	var w *workloads.Workload
	var base *isa.Kernel
	if o.file != "" {
		src, err := os.ReadFile(o.file)
		if err != nil {
			return "", err
		}
		base, err = compiler.Parse(string(src))
		if err != nil {
			return "", err
		}
	} else {
		var err error
		w, err = workloads.ByName(o.name)
		if err != nil {
			return "", err
		}
		base = w.Kernel
	}
	k, err := compiler.ApplyOpts(base, scheme, compiler.Opts{DCE: o.optimize, Schedule: o.optimize})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if o.disas {
		for pc, in := range k.Code {
			fmt.Fprintf(&b, "%4d: %v\n", pc, in)
		}
	}
	cfg := sm.DefaultConfig()
	cfg.Workers = o.smWorkers
	cfg.MemModel = o.memModel
	if o.fault >= 0 {
		cfg.ECC = true
	}
	var g *sm.GPU
	if w != nil {
		g = w.NewGPU(cfg)
	} else {
		g = sm.NewGPU(cfg, o.memWords)
	}
	if o.fault >= 0 {
		g.Fault = &sm.FaultPlan{TargetDynInstr: o.fault, Lane: o.lane, BitMask: 1 << uint(o.bit%32)}
	}
	g.Obs = o.rec
	var fr *simprof.FlightRecorder
	if o.flight != nil {
		fr = simprof.NewFlightRecorder(0)
		if w != nil {
			fr.Annotate(w.Name, 0)
		}
		g.Flight = fr
	}
	st, err := g.LaunchContext(ctx, k)
	if err != nil {
		o.flight.dump(fr)
		if st == nil || ctx.Err() == nil {
			return "", err
		}
		// Cancelled mid-launch: the partial stats are still coherent, so
		// report what ran before returning the error.
		fmt.Fprintf(&b, "workload    %s under %v  [PARTIAL: %v]\n", k.Name, scheme, err)
		fmt.Fprintf(&b, "cycles      %d (so far)\n", st.Cycles)
		fmt.Fprintf(&b, "warp instrs %d (IPC %.2f)\n", st.DynWarpInstrs, st.IPC())
		b.WriteString("\n")
		return b.String(), err
	}
	var verifyErr error
	if w != nil {
		verifyErr = w.Verify(g)
	}
	if verifyErr != nil && fr != nil && o.fault < 0 {
		// Corruption with no deliberate fault injected is a real failure:
		// stamp and persist the black box. (Injected-fault SDCs are the
		// experiment's expected outcome, not a bug worth a bundle.)
		fr.Fail(k.Name, k.Scheme, o.smWorkers, st.Cycles, cfg,
			"output verification failed: "+verifyErr.Error())
		o.flight.dump(fr)
	}

	fmt.Fprintf(&b, "workload    %s under %v\n", k.Name, scheme)
	fmt.Fprintf(&b, "cycles      %d\n", st.Cycles)
	fmt.Fprintf(&b, "warp instrs %d (IPC %.2f)\n", st.DynWarpInstrs, st.IPC())
	fmt.Fprintf(&b, "occupancy   %d resident warps (max)\n", st.MaxResidentWarps)
	fmt.Fprintf(&b, "stalls      deps=%d throttle=%d barrier=%d empty=%d (failed issue slots)\n",
		st.StallDeps, st.StallThrottle, st.StallBarrier, st.StallNoWarp)
	fmt.Fprintf(&b, "idle cycles %d of %d (deps=%d throttle=%d barrier=%d empty=%d)\n",
		st.StallCycles(), st.Cycles,
		st.StallCyclesDeps, st.StallCyclesThrottle, st.StallCyclesBarrier, st.StallCyclesNoWarp)
	if st.Mem != nil {
		fmt.Fprintf(&b, "mem stalls  %d (l1=%d l2=%d dram=%d mshr=%d); L1 %d/%d hit, L2 %d/%d hit, DRAM rows %d/%d hit\n",
			st.MemStallCycles(), st.StallCyclesMemL1, st.StallCyclesMemL2,
			st.StallCyclesMemDRAM, st.StallCyclesMemMSHR,
			st.Mem.L1Hits, st.Mem.L1Hits+st.Mem.L1Misses,
			st.Mem.L2Hits, st.Mem.L2Hits+st.Mem.L2Misses,
			st.Mem.RowHits, st.Mem.RowHits+st.Mem.RowMisses)
	}
	fmt.Fprintf(&b, "classes    ")
	for cl := isa.ClassFxP; cl <= isa.ClassSpecial; cl++ {
		if st.PerClass[cl] > 0 {
			fmt.Fprintf(&b, " %v=%d", cl, st.PerClass[cl])
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "categories ")
	for cat := isa.CatNotEligible; cat <= isa.CatChecking; cat++ {
		if st.PerCat[cat] > 0 {
			fmt.Fprintf(&b, " %v=%d", cat, st.PerCat[cat])
		}
	}
	b.WriteString("\n")
	if o.fault >= 0 {
		fmt.Fprintf(&b, "fault       applied=%v\n", g.Fault.Applied)
		fmt.Fprintf(&b, "detection   pipeline DUEs=%d, software trap=%v\n", st.PipelineDUEs, st.Trapped)
	}
	switch {
	case verifyErr != nil:
		fmt.Fprintf(&b, "output      CORRUPTED: %v\n", verifyErr)
	case w != nil:
		fmt.Fprintf(&b, "output      verified correct\n")
	}
	b.WriteString("\n")
	return b.String(), nil
}

// submitPerf is the -submit client mode: the -scheme sweep runs as a perf
// job on a swapserve (or comes straight from its content-addressed cache).
// traceParent, when set, pins the submission's trace ID so the server-side
// execution correlates with whatever minted it.
func submitPerf(log *slog.Logger, base, tenant, traceParent string, schemes []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	for i := range schemes {
		schemes[i] = strings.TrimSpace(schemes[i])
	}
	c := &jobs.Client{Base: base}
	if traceParent != "" {
		if id, ok := obs.ParseTraceparent(traceParent); ok {
			c.Trace = id
		} else if len(traceParent) == 32 {
			c.Trace = traceParent // bare trace ID, no traceparent framing
		} else {
			return fmt.Errorf("swapsim: bad -traceparent %q", traceParent)
		}
		log.Info("submitting under trace", slog.String("trace_id", c.Trace))
	}
	raw, err := c.RunJob(ctx, jobs.Spec{Kind: jobs.KindPerf, Tenant: tenant, Schemes: schemes},
		func(format string, args ...any) { log.Info(fmt.Sprintf(format, args...)) })
	if err != nil {
		return err
	}
	fmt.Println(jobs.RenderPayload(raw))
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swapsim:", err)
		os.Exit(1)
	}
}
