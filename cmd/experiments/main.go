// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig12 -workers 4
//	experiments -exp fig10,fig11 -tuples 10000 -seed 1
//
// Experiments: headline table1 table2 table3 table4 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 all. ("all" covers the tables and figures;
// "headline" recomputes the paper-vs-measured claim summary.)
//
// Experiments run concurrently as jobs on one engine pool (-workers, default
// all cores); simulation and injection results are bit-identical at any
// worker count, and output is printed in the canonical experiment order
// regardless of completion order. Ctrl-C (or -timeout) cancels the run and
// reports what finished.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"swapcodes/internal/arith"
	"swapcodes/internal/engine"
	"swapcodes/internal/harness"
	"swapcodes/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run (headline, table1..table4, fig10..fig16, all)")
	tuples := flag.Int("tuples", 10000, "input tuples per unit for the fig10/fig11 injection campaign")
	seed := flag.Int64("seed", 1, "campaign master seed (results are bit-identical for a given seed at any -workers)")
	workers := flag.Int("workers", 0, "engine worker count (0 = all cores)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no limit)")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	chart := flag.Bool("chart", false, "render the performance figures as ASCII bar charts")
	verilogDir := flag.String("verilog", "", "export the synthesized units as structural Verilog into this directory")
	metricsOut := flag.String("metrics", "", "write run metrics to this file (.json, .csv, anything else: aligned table)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file, loadable in Perfetto / chrome://tracing")
	metricsInterval := flag.Duration("metrics-interval", 0, "print a progress line to stderr at this interval (e.g. 5s)")
	flag.Parse()

	pool := engine.New(*workers)
	var rec *obs.Recorder
	if *metricsOut != "" || *traceOut != "" || *metricsInterval > 0 {
		rec = obs.NewRecorder()
	}
	pool.SetObs(rec)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	fmt.Fprintf(os.Stderr, "experiments: workers=%d seed=%d tuples=%d\n",
		pool.Workers(), *seed, *tuples)
	stopProgress := obs.StartProgress(os.Stderr, *metricsInterval, func() string {
		snap := pool.Tracker().Snapshot()
		return fmt.Sprintf("experiments: %s; tuples=%d",
			snap.String(), rec.Registry().Counter("faultsim.tuples").Value())
	})

	if *verilogDir != "" {
		fail(os.MkdirAll(*verilogDir, 0o755))
		for _, u := range arith.Units() {
			path := filepath.Join(*verilogDir, strings.ReplaceAll(u.Name, "-", "_")+".v")
			fail(os.WriteFile(path, []byte(u.Circuit.Verilog()), 0o644))
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	}

	var csvMu sync.Mutex
	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		csvMu.Lock()
		defer csvMu.Unlock()
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*csvDir, name)
		fail(os.WriteFile(path, []byte(content), 0o644))
		fmt.Fprintln(os.Stderr, "wrote", path)
	}

	// fig10/fig11 share the injection campaign and fig12/fig13 share the
	// Figure 12 sweep; whichever experiment job gets there first computes
	// the result once and the other reuses it.
	var injOnce sync.Once
	var injRes *harness.InjectionResult
	var injErr error
	getInj := func(ctx context.Context) (*harness.InjectionResult, error) {
		injOnce.Do(func() {
			injRes, injErr = harness.RunInjectionCtx(ctx, pool, *tuples, *seed)
		})
		return injRes, injErr
	}
	var perfOnce sync.Once
	var perfRes *harness.PerfResult
	var perfErr error
	getPerf12 := func(ctx context.Context) (*harness.PerfResult, error) {
		perfOnce.Do(func() {
			perfRes, perfErr = harness.RunPerfCtx(ctx, pool, harness.Fig12Schemes(), true)
		})
		return perfRes, perfErr
	}

	// Canonical order: this is both the -exp name space and the order the
	// output is printed in, however the jobs are scheduled.
	type experiment struct {
		name string
		run  func(ctx context.Context) (string, error)
	}
	experiments := []experiment{
		{"headline", func(ctx context.Context) (string, error) {
			rows, err := harness.HeadlineCtx(ctx, pool, *tuples, *seed)
			if err != nil {
				return "", err
			}
			return harness.RenderHeadline(rows), nil
		}},
		{"table1", func(context.Context) (string, error) { return harness.Table1(), nil }},
		{"table2", func(context.Context) (string, error) { return harness.Table2(), nil }},
		{"table3", func(context.Context) (string, error) { return harness.Table3(), nil }},
		{"table4", func(context.Context) (string, error) {
			rows := harness.Table4()
			writeCSV("table4.csv", harness.Table4CSV(rows))
			return harness.RenderTable4(rows), nil
		}},
		{"fig10", func(ctx context.Context) (string, error) {
			inj, err := getInj(ctx)
			if err != nil {
				return "", err
			}
			writeCSV("fig10_fig11.csv", inj.CSV())
			if tl := inj.RenderThroughput(); tl != "" {
				fmt.Fprintf(os.Stderr, "experiments: %s\n", tl)
			}
			return inj.RenderFig10() + "\n" + inj.RenderConeStats(), nil
		}},
		{"fig11", func(ctx context.Context) (string, error) {
			inj, err := getInj(ctx)
			if err != nil {
				return "", err
			}
			out := inj.RenderFig11()
			out += fmt.Sprintf("pooled detection coverage: SEC-DED %.2f%%, Mod-127 %.2f%% (paper: >98.8%% / >99.3%%)\n",
				100*inj.DetectionCoverage(codeByName("SEC-DED-DP")),
				100*inj.DetectionCoverage(codeByName("Mod-127")))
			return out, nil
		}},
		{"fig12", func(ctx context.Context) (string, error) {
			perf, err := getPerf12(ctx)
			if err != nil {
				return "", err
			}
			out := perf.Render("Figure 12: slowdown over the un-duplicated program (Tesla P100-class SM model)")
			if *chart {
				out += "\n" + perf.Chart("Figure 12 (chart)", 120)
			}
			writeCSV("fig12.csv", perf.CSV())
			return out, nil
		}},
		{"fig13", func(ctx context.Context) (string, error) {
			perf, err := getPerf12(ctx)
			if err != nil {
				return "", err
			}
			mix := harness.RunCodeMix(perf)
			writeCSV("fig13.csv", mix.CSV())
			return mix.Render(), nil
		}},
		{"fig14", func(context.Context) (string, error) {
			pr, err := harness.RunPower()
			if err != nil {
				return "", err
			}
			writeCSV("fig14.csv", pr.CSV())
			return pr.Render() +
				fmt.Sprintf("worst power overhead: %.0f%% (paper: <=15%%)\n", 100*(pr.MaxRelPower()-1)), nil
		}},
		{"fig15", func(ctx context.Context) (string, error) {
			perf, err := harness.RunPerfCtx(ctx, pool, harness.Fig15Schemes(), true)
			if err != nil {
				return "", err
			}
			writeCSV("fig15.csv", perf.CSV())
			return perf.Render("Figure 15: inter-thread duplication slowdown (fails on mm: CTA size; snap: shuffles)"), nil
		}},
		{"fig16", func(ctx context.Context) (string, error) {
			perf, err := harness.RunPerfCtx(ctx, pool, harness.Fig16Schemes(), true)
			if err != nil {
				return "", err
			}
			writeCSV("fig16.csv", perf.CSV())
			return perf.Render("Figure 16: Swap-Predict with plausible future check-bit predictors"), nil
		}},
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	var selected []experiment
	known := map[string]bool{"all": true}
	for _, e := range experiments {
		known[e.name] = true
		if want[e.name] || all {
			selected = append(selected, e)
		}
	}
	for name := range want {
		if !known[name] {
			fail(fmt.Errorf("unknown experiment %q", name))
		}
	}

	// All selected experiments run concurrently as engine jobs; the harness
	// drivers they call fan out further on the same pool, which keeps the
	// global worker bound. Output and timings are buffered per experiment
	// and printed in canonical order.
	outputs := make([]string, len(selected))
	times := make([]time.Duration, len(selected))
	jobs := make([]engine.Job, len(selected))
	for i, e := range selected {
		i, e := i, e
		jobs[i] = engine.Job{Name: e.name, Run: func(ctx context.Context) error {
			start := time.Now()
			out, err := e.run(ctx)
			times[i] = time.Since(start)
			outputs[i] = out
			return err
		}}
	}
	start := time.Now()
	runErr := pool.Run(ctx, jobs)
	stopProgress()
	for i, e := range selected {
		if outputs[i] == "" {
			fmt.Fprintf(os.Stderr, "experiments: %s: no result (cancelled or failed)\n", e.name)
			continue
		}
		fmt.Println(outputs[i])
	}
	for i, e := range selected {
		if times[i] > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %-8s %8.2fs\n", e.name, times[i].Seconds())
		}
	}
	pr := pool.Tracker().Snapshot()
	fmt.Fprintf(os.Stderr, "experiments: total %.2fs; engine: %s\n",
		time.Since(start).Seconds(), pr.String())
	// Metrics and trace flush before the exit on runErr so a cancelled run
	// (Ctrl-C, -timeout) still leaves its partial observations on disk.
	if rec != nil {
		if runErr != nil {
			fmt.Fprintln(os.Stderr, "experiments: cancelled; writing partial metrics")
		}
		writeFile := func(path string, emit func(f *os.File) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err != nil {
				fail(err)
			}
			if err := emit(f); err != nil {
				f.Close()
				fail(err)
			}
			fail(f.Close())
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
		writeFile(*metricsOut, func(f *os.File) error { return rec.Registry().WriteMetrics(f, *metricsOut) })
		writeFile(*traceOut, func(f *os.File) error { return rec.WriteTrace(f) })
	}
	fail(runErr)
}

func codeByName(name string) interface {
	Name() string
	CheckBits() int
	Encode(uint32) uint32
	Detects(uint32, uint32) bool
} {
	for _, c := range harness.Fig11Codes() {
		if c.Name() == name {
			return c
		}
	}
	panic("unknown code " + name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
