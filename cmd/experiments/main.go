// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig12 -workers 4
//	experiments -exp fig10,fig11 -tuples 10000 -seed 1
//	experiments -submit localhost:9090 -exp fig10,fig12
//
// Experiments: headline table1 table2 table3 table4 fig10 fig11 fig12
// fig13 cpistack memcpi fig14 fig15 fig16 smprof verify all. ("all" covers
// the tables and figures; "headline" recomputes the paper-vs-measured claim
// summary; "cpistack" decomposes each scheme's Figure 12 slowdown into
// per-kernel cycle stacks and a baseline-diff attribution table; "memcpi"
// re-runs the Figure 12 sweep with the sectored L1/MSHR/L2/DRAM memory
// hierarchy armed (sm.Config.MemModel) and reports each kernel's idle share
// by hierarchy level alongside the cache hit rates; "smprof"
// profiles the partitioned round loop itself — phase-A vs merge-barrier
// wall time, Amdahl ceiling, idle-skip savings per workload x scheme — and
// runs serially, so it is opt-in like "verify", which runs the
// differential verifier — every workload x scheme x optimization combo
// linted and checked for architectural equivalence against baseline — and
// is not part of "all" since it replays the whole workload suite 68 times.)
//
// Experiments run concurrently as jobs on one engine pool (-workers, default
// all cores); simulation and injection results are bit-identical at any
// worker count, and output is printed in the canonical experiment order
// regardless of completion order. Ctrl-C (or -timeout) cancels the run and
// reports what finished.
//
// With -submit the server-backed experiments (headline, fig10, fig11,
// fig12, cpistack, fig15, fig16, verify) run as jobs on a swapserve
// instead of locally — duplicates sharing a spec (fig10/fig11) collapse
// into one submission, and a warm server answers identical respins from
// its content-addressed cache. See EXPERIMENTS.md "Running the job
// server".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"swapcodes/internal/arith"
	"swapcodes/internal/compiler"
	"swapcodes/internal/engine"
	"swapcodes/internal/harness"
	"swapcodes/internal/jobs"
	"swapcodes/internal/obs"
	"swapcodes/internal/verify"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run (headline, table1..table4, fig10..fig16, cpistack, memcpi, smprof, verify, all)")
	tuples := flag.Int("tuples", 10000, "input tuples per unit for the fig10/fig11 injection campaign")
	seed := flag.Int64("seed", 1, "campaign master seed (results are bit-identical for a given seed at any -workers)")
	workers := flag.Int("workers", 0, "engine worker count (0 = all cores)")
	smWorkers := flag.Int("sm-workers", 0, "SM-simulator scheduler workers per launch for perf sweeps (0 = serial; results are bit-identical at any count)")
	memModel := flag.String("mem-model", "", "SM memory timing model for the perf-sweep figures: off (flat latency, the default) or sectored (L1/MSHR/L2/DRAM hierarchy; -exp memcpi always runs sectored)")
	timeout := flag.Duration("timeout", 0, "cancel the run after this long (0 = no limit)")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	chart := flag.Bool("chart", false, "render the performance figures as ASCII bar charts")
	verilogDir := flag.String("verilog", "", "export the synthesized units as structural Verilog into this directory")
	metricsOut := flag.String("metrics", "", "write run metrics to this file (.json, .csv, anything else: aligned table)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file, loadable in Perfetto / chrome://tracing")
	metricsInterval := flag.Duration("metrics-interval", 0, "print a progress line to stderr at this interval (e.g. 5s)")
	serve := flag.String("serve", "", "serve live observability on this address (GET /metrics Prometheus text, /runs JSON, /debug/pprof)")
	submit := flag.String("submit", "", "submit the experiments to a running swapserve at this base URL (e.g. http://127.0.0.1:9090) instead of running locally")
	tenant := flag.String("tenant", "", "tenant fairness key for -submit (empty = default tenant)")
	flag.Parse()

	if *submit != "" {
		fail(runSubmit(*submit, *tenant, *exp, *tuples, *seed, *smWorkers, *memModel))
		return
	}

	var rec *obs.Recorder
	if *metricsOut != "" || *traceOut != "" || *metricsInterval > 0 || *serve != "" {
		rec = obs.NewRecorder()
	}
	fail(run(rec, *exp, *tuples, *seed, *workers, *smWorkers, *memModel, *timeout, *serve, *csvDir,
		*chart, *verilogDir, *metricsOut, *traceOut, *metricsInterval))
}

// run owns the experiment lifecycle so its defers fire on every exit path:
// the metrics/trace flush and the -serve shutdown happen on success, on
// cancellation (Ctrl-C, -timeout), on experiment failure, and during a
// panic unwind — a crashed run still leaves its partial observations.
func run(rec *obs.Recorder, exp string, tuples int, seed int64, workers, smWorkers int,
	memModel string, timeout time.Duration, serve, csvDir string, chart bool, verilogDir,
	metricsOut, traceOut string, metricsInterval time.Duration) (err error) {
	pool := engine.New(workers)
	pool.SetObs(rec)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// The flush runs deferred — and exactly once — so partial observations
	// survive cancellation, failures, and panics.
	flusher := &obs.FileFlusher{Rec: rec, MetricsPath: metricsOut, TracePath: traceOut,
		Logf: func(path string) { fmt.Fprintln(os.Stderr, "wrote", path) }}
	defer func() {
		if ferr := flusher.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if serve != "" {
		srv, serr := obs.StartServer(serve, rec.Registry(), func() any {
			return pool.Tracker().Snapshot()
		})
		if serr != nil {
			return serr
		}
		fmt.Fprintf(os.Stderr, "experiments: serving observability on %s\n", srv.URL())
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if serr := srv.Shutdown(sctx); serr != nil && err == nil {
				err = serr
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "experiments: workers=%d seed=%d tuples=%d\n",
		pool.Workers(), seed, tuples)
	stopProgress := obs.StartProgress(os.Stderr, metricsInterval, func() string {
		snap := pool.Tracker().Snapshot()
		return fmt.Sprintf("experiments: %s; tuples=%d",
			snap.String(), rec.Registry().SumCounters("faultsim.tuples"))
	})
	defer stopProgress()

	if verilogDir != "" {
		if err := os.MkdirAll(verilogDir, 0o755); err != nil {
			return err
		}
		for _, u := range arith.Units() {
			path := filepath.Join(verilogDir, strings.ReplaceAll(u.Name, "-", "_")+".v")
			if err := os.WriteFile(path, []byte(u.Circuit.Verilog()), 0o644); err != nil {
				return err
			}
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	}

	// CSV write failures must not os.Exit past the deferred flush; the first
	// one is remembered and surfaces after the run.
	var csvMu sync.Mutex
	var csvErr error
	writeCSV := func(name, content string) {
		if csvDir == "" {
			return
		}
		csvMu.Lock()
		defer csvMu.Unlock()
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			if csvErr == nil {
				csvErr = err
			}
			return
		}
		path := filepath.Join(csvDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			if csvErr == nil {
				csvErr = err
			}
			return
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}

	// fig10/fig11 share the injection campaign and fig12/fig13 share the
	// Figure 12 sweep; whichever experiment job gets there first computes
	// the result once and the other reuses it.
	var injOnce sync.Once
	var injRes *harness.InjectionResult
	var injErr error
	getInj := func(ctx context.Context) (*harness.InjectionResult, error) {
		injOnce.Do(func() {
			injRes, injErr = harness.RunInjectionCtx(ctx, pool, tuples, seed)
		})
		return injRes, injErr
	}
	var perfOnce sync.Once
	var perfRes *harness.PerfResult
	var perfErr error
	getPerf12 := func(ctx context.Context) (*harness.PerfResult, error) {
		perfOnce.Do(func() {
			perfRes, perfErr = harness.RunPerfCtxOpts(ctx, pool, harness.Fig12Schemes(), true,
				harness.Options{SMWorkers: smWorkers, MemModel: memModel})
		})
		return perfRes, perfErr
	}
	// memcpi always runs with the hierarchy armed; it shares getPerf12's
	// sweep when -mem-model already arms it, and runs its own otherwise.
	var perfMemOnce sync.Once
	var perfMemRes *harness.PerfResult
	var perfMemErr error
	getPerfMem := func(ctx context.Context) (*harness.PerfResult, error) {
		if memModel == "sectored" {
			return getPerf12(ctx)
		}
		perfMemOnce.Do(func() {
			perfMemRes, perfMemErr = harness.RunPerfCtxOpts(ctx, pool, harness.Fig12Schemes(), true,
				harness.Options{SMWorkers: smWorkers, MemModel: "sectored"})
		})
		return perfMemRes, perfMemErr
	}

	// Canonical order: this is both the -exp name space and the order the
	// output is printed in, however the jobs are scheduled.
	type experiment struct {
		name string
		run  func(ctx context.Context) (string, error)
	}
	experiments := []experiment{
		{"headline", func(ctx context.Context) (string, error) {
			rows, err := harness.HeadlineCtx(ctx, pool, tuples, seed)
			if err != nil {
				return "", err
			}
			return harness.RenderHeadline(rows), nil
		}},
		{"table1", func(context.Context) (string, error) { return harness.Table1(), nil }},
		{"table2", func(context.Context) (string, error) { return harness.Table2(), nil }},
		{"table3", func(context.Context) (string, error) { return harness.Table3(), nil }},
		{"table4", func(context.Context) (string, error) {
			rows := harness.Table4()
			writeCSV("table4.csv", harness.Table4CSV(rows))
			return harness.RenderTable4(rows), nil
		}},
		{"fig10", func(ctx context.Context) (string, error) {
			inj, err := getInj(ctx)
			if err != nil {
				return "", err
			}
			writeCSV("fig10_fig11.csv", inj.CSV())
			if tl := inj.RenderThroughput(); tl != "" {
				fmt.Fprintf(os.Stderr, "experiments: %s\n", tl)
			}
			return inj.RenderFig10() + "\n" + inj.RenderConeStats(), nil
		}},
		{"fig11", func(ctx context.Context) (string, error) {
			inj, err := getInj(ctx)
			if err != nil {
				return "", err
			}
			out := inj.RenderFig11()
			out += fmt.Sprintf("pooled detection coverage: SEC-DED %.2f%%, Mod-127 %.2f%% (paper: >98.8%% / >99.3%%)\n",
				100*inj.DetectionCoverage(codeByName("SEC-DED-DP")),
				100*inj.DetectionCoverage(codeByName("Mod-127")))
			return out, nil
		}},
		{"fig12", func(ctx context.Context) (string, error) {
			perf, err := getPerf12(ctx)
			if err != nil {
				return "", err
			}
			out := perf.Render("Figure 12: slowdown over the un-duplicated program (Tesla P100-class SM model)")
			if chart {
				out += "\n" + perf.Chart("Figure 12 (chart)", 120)
			}
			writeCSV("fig12.csv", perf.CSV())
			return out, nil
		}},
		{"fig13", func(ctx context.Context) (string, error) {
			perf, err := getPerf12(ctx)
			if err != nil {
				return "", err
			}
			mix := harness.RunCodeMix(perf)
			writeCSV("fig13.csv", mix.CSV())
			return mix.Render(), nil
		}},
		{"cpistack", func(ctx context.Context) (string, error) {
			perf, err := getPerf12(ctx)
			if err != nil {
				return "", err
			}
			cs := harness.CPIStacks(perf)
			out := cs.Render("CPI stacks: where each scheme's cycles go (headline sweep)")
			out += "\n" + cs.RenderAttribution("Slowdown attribution vs unprotected baseline")
			if chart {
				out += "\n" + cs.Chart("CPI stacks (chart)")
			}
			writeCSV("cpistack.csv", cs.CSV())
			return out, nil
		}},
		{"memcpi", func(ctx context.Context) (string, error) {
			perf, err := getPerfMem(ctx)
			if err != nil {
				return "", err
			}
			mc := harness.MemCPI(perf)
			out := mc.Render("Memory CPI: idle share by hierarchy level (Figure 12 sweep, sectored model)")
			if chart {
				cs := harness.CPIStacks(perf)
				out += "\n" + cs.Chart("CPI stacks with memory tiers (chart)")
			}
			writeCSV("memcpi.csv", mc.CSV())
			return out, nil
		}},
		{"fig14", func(context.Context) (string, error) {
			pr, err := harness.RunPower()
			if err != nil {
				return "", err
			}
			writeCSV("fig14.csv", pr.CSV())
			return pr.Render() +
				fmt.Sprintf("worst power overhead: %.0f%% (paper: <=15%%)\n", 100*(pr.MaxRelPower()-1)), nil
		}},
		{"fig15", func(ctx context.Context) (string, error) {
			perf, err := harness.RunPerfCtxOpts(ctx, pool, harness.Fig15Schemes(), true,
				harness.Options{SMWorkers: smWorkers, MemModel: memModel})
			if err != nil {
				return "", err
			}
			writeCSV("fig15.csv", perf.CSV())
			return perf.Render("Figure 15: inter-thread duplication slowdown (fails on mm: CTA size; snap: shuffles)"), nil
		}},
		{"fig16", func(ctx context.Context) (string, error) {
			perf, err := harness.RunPerfCtxOpts(ctx, pool, harness.Fig16Schemes(), true,
				harness.Options{SMWorkers: smWorkers, MemModel: memModel})
			if err != nil {
				return "", err
			}
			writeCSV("fig16.csv", perf.CSV())
			return perf.Render("Figure 16: Swap-Predict with plausible future check-bit predictors"), nil
		}},
		{"smprof", func(ctx context.Context) (string, error) {
			res, err := harness.RunSMProfCtx(ctx, harness.Fig12Schemes(), harness.Options{SMWorkers: smWorkers})
			if err != nil {
				return "", err
			}
			writeCSV("smprof.csv", res.CSV())
			return res.Render("SM round-loop attribution: parallel phase A vs serial merge vs idle-skip"), nil
		}},
		{"verify", func(ctx context.Context) (string, error) {
			res, err := harness.RunVerifyCtx(ctx, pool, verify.Matrix())
			if err != nil {
				return "", err
			}
			out := res.Render("Differential verification: workloads x schemes x {DCE, Schedule, DisableMoveProp}")
			if n := res.Failed(); n > 0 {
				return out, fmt.Errorf("verify: %d combo cells failed", n)
			}
			return out, nil
		}},
	}

	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	var selected []experiment
	known := map[string]bool{"all": true}
	for _, e := range experiments {
		known[e.name] = true
		// "verify" replays the whole workload suite across 68 combos, and
		// "smprof" runs every launch strictly serially to keep its wall-time
		// attribution clean; both are opt-in only and not part of "all".
		if want[e.name] || (all && e.name != "verify" && e.name != "smprof") {
			selected = append(selected, e)
		}
	}
	for name := range want {
		if !known[name] {
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	// All selected experiments run concurrently as engine jobs; the harness
	// drivers they call fan out further on the same pool, which keeps the
	// global worker bound. Output and timings are buffered per experiment
	// and printed in canonical order.
	outputs := make([]string, len(selected))
	times := make([]time.Duration, len(selected))
	jobs := make([]engine.Job, len(selected))
	for i, e := range selected {
		i, e := i, e
		jobs[i] = engine.Job{Name: e.name, Run: func(ctx context.Context) error {
			start := time.Now()
			out, err := e.run(ctx)
			times[i] = time.Since(start)
			outputs[i] = out
			return err
		}}
	}
	start := time.Now()
	runErr := pool.Run(ctx, jobs)
	stopProgress()
	for i, e := range selected {
		if outputs[i] == "" {
			fmt.Fprintf(os.Stderr, "experiments: %s: no result (cancelled or failed)\n", e.name)
			continue
		}
		fmt.Println(outputs[i])
	}
	for i, e := range selected {
		if times[i] > 0 {
			fmt.Fprintf(os.Stderr, "experiments: %-8s %8.2fs\n", e.name, times[i].Seconds())
		}
	}
	pr := pool.Tracker().Snapshot()
	fmt.Fprintf(os.Stderr, "experiments: total %.2fs; engine: %s\n",
		time.Since(start).Seconds(), pr.String())
	// The deferred flushObs writes metrics/trace after this return, so a
	// cancelled run (Ctrl-C, -timeout) still leaves its partial observations
	// on disk.
	if runErr != nil && rec != nil {
		fmt.Fprintln(os.Stderr, "experiments: cancelled; writing partial metrics")
	}
	if runErr == nil {
		runErr = csvErr
	}
	return runErr
}

// runSubmit is the -submit client mode: experiments become job specs
// against a running swapserve, which runs (or serves from cache) each one
// and returns the payload. Only the service-backed experiments map; the
// local-only ones (static tables, fig13/fig14 post-processing) say so.
func runSubmit(base, tenant, exp string, tuples int, seed int64, smWorkers int, memModel string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	names := func(schemes []compiler.Scheme) []string {
		out := make([]string, len(schemes))
		for i, s := range schemes {
			out[i] = harness.SchemeName(s)
		}
		return out
	}
	specFor := map[string]jobs.Spec{
		"headline": {Kind: jobs.KindHeadline, Tuples: tuples, Seed: seed},
		"fig10":    {Kind: jobs.KindCampaign, Tuples: tuples, Seed: seed},
		"fig11":    {Kind: jobs.KindCampaign, Tuples: tuples, Seed: seed},
		"fig12":    {Kind: jobs.KindPerf, Schemes: names(harness.Fig12Schemes()), SMWorkers: smWorkers, MemModel: memModel},
		"cpistack": {Kind: jobs.KindCPIStack, Schemes: names(harness.Fig12Schemes()), SMWorkers: smWorkers, MemModel: memModel},
		"memcpi":   {Kind: jobs.KindCPIStack, Schemes: names(harness.Fig12Schemes()), SMWorkers: smWorkers, MemModel: "sectored"},
		"fig15":    {Kind: jobs.KindPerf, Schemes: names(harness.Fig15Schemes()), SMWorkers: smWorkers, MemModel: memModel},
		"fig16":    {Kind: jobs.KindPerf, Schemes: names(harness.Fig16Schemes()), SMWorkers: smWorkers, MemModel: memModel},
		"verify":   {Kind: jobs.KindVerify},
	}
	order := []string{"headline", "fig10", "fig11", "fig12", "cpistack", "memcpi", "fig15", "fig16", "verify"}

	want := map[string]bool{}
	for _, e := range strings.Split(exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	if want["all"] {
		for _, name := range order {
			// Same opt-in rule as local runs: verify is not part of "all".
			want[name] = want[name] || name != "verify"
		}
		delete(want, "all")
	}
	for name := range want {
		if _, ok := specFor[name]; !ok {
			return fmt.Errorf("experiment %q cannot run via -submit (server-backed: %s)",
				name, strings.Join(order, ", "))
		}
	}

	c := &jobs.Client{Base: base}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "experiments: "+format+"\n", args...)
	}
	// fig10 and fig11 share one campaign spec; submit each distinct spec
	// once and reuse the payload (the server would cache-hit anyway, but
	// this also skips the duplicate polling).
	payloads := map[string][]byte{}
	for _, name := range order {
		if !want[name] {
			continue
		}
		spec := specFor[name]
		spec.Tenant = tenant
		norm := spec
		if err := norm.Normalize(); err != nil {
			return err
		}
		key := norm.Key()
		raw, ok := payloads[key]
		if !ok {
			var err error
			raw, err = c.RunJob(ctx, spec, logf)
			if err != nil {
				return err
			}
			payloads[key] = raw
		}
		fmt.Printf("== %s ==\n%s\n", name, jobs.RenderPayload(raw))
	}
	return nil
}

func codeByName(name string) interface {
	Name() string
	CheckBits() int
	Encode(uint32) uint32
	Detects(uint32, uint32) bool
} {
	for _, c := range harness.Fig11Codes() {
		if c.Name() == name {
			return c
		}
	}
	panic("unknown code " + name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
