// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig12
//	experiments -exp fig10,fig11 -tuples 10000
//
// Experiments: headline table1 table2 table3 table4 fig10 fig11 fig12
// fig13 fig14 fig15 fig16 all. ("all" covers the tables and figures;
// "headline" recomputes the paper-vs-measured claim summary.)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swapcodes/internal/arith"
	"swapcodes/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments to run (headline, table1..table4, fig10..fig16, all)")
	tuples := flag.Int("tuples", 10000, "input tuples per unit for the fig10/fig11 injection campaign")
	seed := flag.Int64("seed", 1, "campaign random seed")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	chart := flag.Bool("chart", false, "render the performance figures as ASCII bar charts")
	verilogDir := flag.String("verilog", "", "export the synthesized units as structural Verilog into this directory")
	flag.Parse()

	if *verilogDir != "" {
		fail(os.MkdirAll(*verilogDir, 0o755))
		for _, u := range arith.Units() {
			path := filepath.Join(*verilogDir, strings.ReplaceAll(u.Name, "-", "_")+".v")
			fail(os.WriteFile(path, []byte(u.Circuit.Verilog()), 0o644))
			fmt.Fprintln(os.Stderr, "wrote", path)
		}
	}

	writeCSV := func(name, content string) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		path := filepath.Join(*csvDir, name)
		fail(os.WriteFile(path, []byte(content), 0o644))
		fmt.Fprintln(os.Stderr, "wrote", path)
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("headline") {
		rows, err := harness.Headline(*tuples, *seed)
		fail(err)
		fmt.Println(harness.RenderHeadline(rows))
	}
	if sel("table1") {
		fmt.Println(harness.Table1())
	}
	if sel("table2") {
		fmt.Println(harness.Table2())
	}
	if sel("table3") {
		fmt.Println(harness.Table3())
	}
	if sel("table4") {
		rows := harness.Table4()
		fmt.Println(harness.RenderTable4(rows))
		writeCSV("table4.csv", harness.Table4CSV(rows))
	}

	var inj *harness.InjectionResult
	if sel("fig10") || sel("fig11") {
		var err error
		inj, err = harness.RunInjection(*tuples, *seed)
		fail(err)
	}
	if sel("fig10") {
		fmt.Println(inj.RenderFig10())
		writeCSV("fig10_fig11.csv", inj.CSV())
	}
	if sel("fig11") {
		fmt.Println(inj.RenderFig11())
		fmt.Printf("pooled detection coverage: SEC-DED %.2f%%, Mod-127 %.2f%% (paper: >98.8%% / >99.3%%)\n\n",
			100*inj.DetectionCoverage(codeByName("SEC-DED-DP")),
			100*inj.DetectionCoverage(codeByName("Mod-127")))
	}

	var perf12 *harness.PerfResult
	if sel("fig12") || sel("fig13") {
		var err error
		perf12, err = harness.RunPerf(harness.Fig12Schemes(), true)
		fail(err)
	}
	if sel("fig12") {
		fmt.Println(perf12.Render("Figure 12: slowdown over the un-duplicated program (Tesla P100-class SM model)"))
		if *chart {
			fmt.Println(perf12.Chart("Figure 12 (chart)", 120))
		}
		writeCSV("fig12.csv", perf12.CSV())
	}
	if sel("fig13") {
		mix := harness.RunCodeMix(perf12)
		fmt.Println(mix.Render())
		writeCSV("fig13.csv", mix.CSV())
	}
	if sel("fig14") {
		pr, err := harness.RunPower()
		fail(err)
		fmt.Println(pr.Render())
		writeCSV("fig14.csv", pr.CSV())
		fmt.Printf("worst power overhead: %.0f%% (paper: <=15%%)\n\n", 100*(pr.MaxRelPower()-1))
	}
	if sel("fig15") {
		perf, err := harness.RunPerf(harness.Fig15Schemes(), true)
		fail(err)
		fmt.Println(perf.Render("Figure 15: inter-thread duplication slowdown (fails on mm: CTA size; snap: shuffles)"))
		writeCSV("fig15.csv", perf.CSV())
	}
	if sel("fig16") {
		perf, err := harness.RunPerf(harness.Fig16Schemes(), true)
		fail(err)
		fmt.Println(perf.Render("Figure 16: Swap-Predict with plausible future check-bit predictors"))
		writeCSV("fig16.csv", perf.CSV())
	}
}

func codeByName(name string) interface {
	Name() string
	CheckBits() int
	Encode(uint32) uint32
	Detects(uint32, uint32) bool
} {
	for _, c := range harness.Fig11Codes() {
		if c.Name() == name {
			return c
		}
	}
	panic("unknown code " + name)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
