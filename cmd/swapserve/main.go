// Command swapserve is the campaign job server: experiments as a service.
// It accepts job specs over HTTP (injection campaigns, performance sweeps,
// headline tables, CPI stacks, differential verification), runs them on a
// shared deterministic engine pool behind a bounded tenant-fair queue,
// streams progress, and persists every submission, shard checkpoint, and
// result to a write-ahead log under -state — a restarted (or SIGKILLed)
// server resumes unfinished campaigns from their last completed shard and
// reproduces the uninterrupted results byte for byte.
//
// Usage:
//
//	swapserve -state /var/lib/swapserve
//	swapserve -addr :9090 -state ./state -max-jobs 4 -workers 8
//
//	curl -s localhost:9090/jobs -d '{"kind":"campaign","tuples":10000}'
//	curl -s localhost:9090/jobs/<id>            # status
//	curl -s localhost:9090/jobs/<id>/events     # SSE progress stream
//	curl -s localhost:9090/jobs/<id>/result     # final payload
//	curl -s localhost:9090/metrics              # Prometheus text
//	curl -s localhost:9090/timeseries           # metric history ring
//	curl -s localhost:9090/healthz              # liveness
//	curl -s localhost:9090/readyz               # readiness (WAL/queue/runner)
//	curl -s localhost:9090/buildinfo            # binary build metadata
//
// The HTTP surface is the obs server (/metrics, /runs, /debug/pprof) with
// the jobs API layered on: /runs reports the queue and job table next to
// the engine progress counters. Diagnostics go to stderr as structured
// logs (-log-format json|text, -log-level debug|info|warn|error); every
// job-scoped line carries trace_id/job_id/tenant, so one
// `grep <trace_id>` isolates a campaign end to end.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"swapcodes/internal/jobs"
	"swapcodes/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9090", "HTTP listen address (use :0 for an ephemeral port)")
	state := flag.String("state", "swapserve-state", "state directory for the WAL and content-addressed cache")
	workers := flag.Int("workers", 0, "engine worker count (0 = all cores)")
	maxJobs := flag.Int("max-jobs", 2, "jobs executing concurrently; queued jobs wait")
	queueCap := flag.Int("queue-cap", 64, "queued-job bound; submissions beyond it are rejected")
	metricsOut := flag.String("metrics", "", "write final metrics to this file on shutdown (.json, .csv, else aligned table)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file on shutdown")
	metricsInterval := flag.Duration("metrics-interval", 0, "print a progress line to stderr at this interval (e.g. 5s)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "log format: json or text")
	flag.Parse()

	if err := run(*addr, *state, *workers, *maxJobs, *queueCap,
		*metricsOut, *traceOut, *metricsInterval, *logLevel, *logFormat); err != nil {
		fmt.Fprintln(os.Stderr, "swapserve:", err)
		os.Exit(1)
	}
}

// run owns the server lifecycle so its defers fire on every exit path: HTTP
// drain, service close (which checkpoints running campaigns at shard
// granularity), and the metrics flush all happen on SIGINT/SIGTERM and
// during a panic unwind alike.
func run(addr, state string, workers, maxJobs, queueCap int,
	metricsOut, traceOut string, metricsInterval time.Duration,
	logLevel, logFormat string) (err error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rec := obs.NewRecorder()

	level, err := obs.ParseLogLevel(logLevel)
	if err != nil {
		return err
	}
	log, err := obs.NewLogger(os.Stderr, logFormat, level, rec.Registry())
	if err != nil {
		return err
	}

	flusher := &obs.FileFlusher{Rec: rec, MetricsPath: metricsOut, TracePath: traceOut,
		Logf: func(path string) { log.Info("artifact written", slog.String("path", path)) }}
	defer func() {
		if ferr := flusher.Flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()

	svc, err := jobs.New(jobs.Options{
		StateDir:          state,
		Workers:           workers,
		MaxConcurrentJobs: maxJobs,
		QueueCap:          queueCap,
		Recorder:          rec,
		Logger:            log,
	})
	if err != nil {
		return err
	}
	defer func() {
		if cerr := svc.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	srv, err := obs.StartConfigured(obs.ServerConfig{
		Addr:     addr,
		Registry: rec.Registry(),
		Runs:     func() any { return svc.Snapshot() },
		Register: svc.Register,
		Logger:   log,
		Ready:    svc.ReadyChecks,
	})
	if err != nil {
		return err
	}
	// The listen line goes to stdout on purpose: with -addr :0 it is how
	// clients (and the e2e harness) discover the bound port.
	fmt.Printf("swapserve: listening on %s (state %s)\n", srv.URL(), state)
	log.Info("server listening", slog.String("url", srv.URL()), slog.String("state", state))
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if serr := srv.Shutdown(sctx); serr != nil && err == nil {
			err = serr
		}
	}()

	stopProgress := obs.StartProgress(os.Stderr, metricsInterval, func() string {
		snap := svc.Snapshot()
		return fmt.Sprintf("swapserve: queue=%d states=%v engine: %s",
			snap.Queue, snap.States, snap.Engine.String())
	})
	defer stopProgress()

	<-ctx.Done()
	log.Info("shutdown signal received")
	return nil
}
