package main

import (
	"bufio"
	"bytes"
	"context"

	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swapcodes/internal/jobs"
)

// The e2e campaign: small enough to finish in seconds, large enough (two
// shards per unit, twelve total) that a kill lands mid-run.
var e2eSpec = jobs.Spec{Kind: jobs.KindCampaign, Tuples: 600, Seed: 1}

// buildServer compiles the swapserve binary under test. With
// SWAPSERVE_E2E_RACE=1 (the CI smoke job) it builds with the race detector,
// so the kill/resume sequence also shakes out data races in the service.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swapserve")
	args := []string{"build"}
	if os.Getenv("SWAPSERVE_E2E_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %v: %v\n%s", args, err, out)
	}
	return bin
}

// server is one running swapserve child process.
type server struct {
	cmd  *exec.Cmd
	base string
	done chan error
}

// startServer launches the binary against stateDir and waits for the listen
// line to learn the ephemeral port.
func startServer(t *testing.T, bin, stateDir string) *server {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-state", stateDir,
		"-max-jobs", "1",
		"-workers", "2")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	s := &server{cmd: cmd, done: make(chan error, 1)}
	go func() { s.done <- cmd.Wait() }()
	t.Cleanup(func() { s.kill() })

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on http://") {
				lines <- line
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("server exited before printing its listen address")
		}
		i := strings.Index(line, "http://")
		s.base = strings.Fields(line[i:])[0]
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the server listen line")
	case err := <-s.done:
		t.Fatalf("server exited early: %v", err)
	}
	return s
}

// kill SIGKILLs the child — the mid-job crash the WAL must absorb.
func (s *server) kill() {
	if s.cmd.Process != nil {
		_ = s.cmd.Process.Kill()
	}
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
	}
}

func (s *server) client() *jobs.Client { return &jobs.Client{Base: s.base} }

// TestServerE2EKillResume is the acceptance test of the job server: a
// campaign killed (SIGKILL) mid-run resumes from its shard checkpoints
// after a restart against the same state dir and produces byte-identical
// results to an uninterrupted run — and a second identical submission is
// served from the content-addressed cache at least 5x faster than the cold
// run.
func TestServerE2EKillResume(t *testing.T) {
	bin := buildServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Reference: an uninterrupted run in a fresh state dir, timed as the
	// cold-run baseline for the cache-speedup assertion.
	refSrv := startServer(t, bin, filepath.Join(t.TempDir(), "ref-state"))
	refClient := refSrv.client()
	coldStart := time.Now()
	refID, err := refClient.Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := refClient.Wait(ctx, refID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference run = %s: %s", refSt.State, refSt.Error)
	}
	refBytes, err := refClient.Result(ctx, refID)
	if err != nil {
		t.Fatal(err)
	}
	refSrv.kill()

	// Victim: same spec in its own state dir, SIGKILLed after at least one
	// shard checkpoint but before completion.
	stateDir := filepath.Join(t.TempDir(), "state")
	srv := startServer(t, bin, stateDir)
	id, err := srv.client().Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	killedMidRun := false
	for {
		st, err := srv.client().Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateRunning && st.ShardsDone >= 1 && st.ShardsDone < st.ShardsTotal {
			killedMidRun = true
			break
		}
		if st.State.Terminal() {
			// Too fast to catch mid-run: the kill below still exercises the
			// restart path, just without outstanding shards.
			t.Logf("job reached %s before the kill window", st.State)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.kill()

	// Restart against the same state dir: the WAL re-enqueues the job with
	// its checkpoints and the run completes from where it stopped.
	srv2 := startServer(t, bin, stateDir)
	c2 := srv2.client()
	st, err := c2.Wait(ctx, id, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("resumed job = %s: %s", st.State, st.Error)
	}
	gotBytes, err := c2.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed result differs from uninterrupted run\nresumed:   %.200s\nreference: %.200s",
			gotBytes, refBytes)
	}
	if killedMidRun {
		t.Logf("killed mid-run and resumed: %d shards, byte-identical result", st.ShardsTotal)
	}

	// Cache speedup: an identical submission to the restarted server must be
	// served from the content-addressed result cache — same bytes, at least
	// 5x faster than the cold run.
	warmStart := time.Now()
	id2, err := c2.Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Wait(ctx, id2, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(warmStart)
	if st2.State != jobs.StateDone {
		t.Fatalf("cached run = %s: %s", st2.State, st2.Error)
	}
	if !st2.CacheHit {
		t.Fatal("identical resubmission was not served from cache")
	}
	cachedBytes, err := c2.Result(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cachedBytes, refBytes) {
		t.Fatal("cached result differs from reference bytes")
	}
	if warm*5 > cold {
		t.Fatalf("cache speedup too small: cold %v, cached %v (want >=5x)", cold, warm)
	}
	t.Logf("cold %v, cached %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}

// TestServerE2EGracefulSignal checks SIGTERM drains cleanly: the server
// exits zero and leaves a replayable state dir.
func TestServerE2EGracefulSignal(t *testing.T) {
	bin := buildServer(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	srv := startServer(t, bin, stateDir)
	if err := srv.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srv.done:
		if err != nil {
			t.Fatalf("server exited non-zero on SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on SIGINT")
	}
	if _, err := os.Stat(filepath.Join(stateDir, "wal.jsonl")); err != nil {
		t.Fatalf("state dir not initialized: %v", err)
	}
}
