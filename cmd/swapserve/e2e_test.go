package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"swapcodes/internal/jobs"
	"swapcodes/internal/obs"
)

// The e2e campaign: small enough to finish in seconds, large enough (two
// shards per unit, twelve total) that a kill lands mid-run.
var e2eSpec = jobs.Spec{Kind: jobs.KindCampaign, Tuples: 600, Seed: 1}

// buildServer compiles the swapserve binary under test. With
// SWAPSERVE_E2E_RACE=1 (the CI smoke job) it builds with the race detector,
// so the kill/resume sequence also shakes out data races in the service.
func buildServer(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "swapserve")
	args := []string{"build"}
	if os.Getenv("SWAPSERVE_E2E_RACE") == "1" {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go %v: %v\n%s", args, err, out)
	}
	return bin
}

// server is one running swapserve child process.
type server struct {
	cmd    *exec.Cmd
	base   string
	done   chan error
	stderr bytes.Buffer // structured log lines; read only after <-done
}

// startServer launches the binary against stateDir and waits for the listen
// line to learn the ephemeral port. Extra flags (e.g. -trace) append after
// the defaults. Stderr is teed into s.stderr so tests can grep the
// structured logs once the process exits.
func startServer(t *testing.T, bin, stateDir string, extra ...string) *server {
	t.Helper()
	args := []string{
		"-addr", "127.0.0.1:0",
		"-state", stateDir,
		"-max-jobs", "1",
		"-workers", "2"}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	s := &server{cmd: cmd, done: make(chan error, 1)}
	cmd.Stderr = io.MultiWriter(os.Stderr, &s.stderr)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	go func() { s.done <- cmd.Wait() }()
	t.Cleanup(func() { s.kill() })

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on http://") {
				lines <- line
				break
			}
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			t.Fatal("server exited before printing its listen address")
		}
		i := strings.Index(line, "http://")
		s.base = strings.Fields(line[i:])[0]
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for the server listen line")
	case err := <-s.done:
		t.Fatalf("server exited early: %v", err)
	}
	return s
}

// kill SIGKILLs the child — the mid-job crash the WAL must absorb.
func (s *server) kill() {
	if s.cmd.Process != nil {
		_ = s.cmd.Process.Kill()
	}
	select {
	case <-s.done:
	case <-time.After(10 * time.Second):
	}
}

func (s *server) client() *jobs.Client { return &jobs.Client{Base: s.base} }

// TestServerE2EKillResume is the acceptance test of the job server: a
// campaign killed (SIGKILL) mid-run resumes from its shard checkpoints
// after a restart against the same state dir and produces byte-identical
// results to an uninterrupted run — and a second identical submission is
// served from the content-addressed cache at least 5x faster than the cold
// run.
func TestServerE2EKillResume(t *testing.T) {
	bin := buildServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Reference: an uninterrupted run in a fresh state dir, timed as the
	// cold-run baseline for the cache-speedup assertion.
	refSrv := startServer(t, bin, filepath.Join(t.TempDir(), "ref-state"))
	refClient := refSrv.client()
	coldStart := time.Now()
	refID, err := refClient.Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	refSt, err := refClient.Wait(ctx, refID, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold := time.Since(coldStart)
	if refSt.State != jobs.StateDone {
		t.Fatalf("reference run = %s: %s", refSt.State, refSt.Error)
	}
	refBytes, err := refClient.Result(ctx, refID)
	if err != nil {
		t.Fatal(err)
	}
	refSrv.kill()

	// Victim: same spec in its own state dir, SIGKILLed after at least one
	// shard checkpoint but before completion.
	stateDir := filepath.Join(t.TempDir(), "state")
	srv := startServer(t, bin, stateDir)
	id, err := srv.client().Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	killedMidRun := false
	for {
		st, err := srv.client().Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == jobs.StateRunning && st.ShardsDone >= 1 && st.ShardsDone < st.ShardsTotal {
			killedMidRun = true
			break
		}
		if st.State.Terminal() {
			// Too fast to catch mid-run: the kill below still exercises the
			// restart path, just without outstanding shards.
			t.Logf("job reached %s before the kill window", st.State)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.kill()

	// Restart against the same state dir: the WAL re-enqueues the job with
	// its checkpoints and the run completes from where it stopped.
	srv2 := startServer(t, bin, stateDir)
	c2 := srv2.client()
	st, err := c2.Wait(ctx, id, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("resumed job = %s: %s", st.State, st.Error)
	}
	gotBytes, err := c2.Result(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, refBytes) {
		t.Fatalf("resumed result differs from uninterrupted run\nresumed:   %.200s\nreference: %.200s",
			gotBytes, refBytes)
	}
	if killedMidRun {
		t.Logf("killed mid-run and resumed: %d shards, byte-identical result", st.ShardsTotal)
	}

	// Cache speedup: an identical submission to the restarted server must be
	// served from the content-addressed result cache — same bytes, at least
	// 5x faster than the cold run.
	warmStart := time.Now()
	id2, err := c2.Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.Wait(ctx, id2, 5*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(warmStart)
	if st2.State != jobs.StateDone {
		t.Fatalf("cached run = %s: %s", st2.State, st2.Error)
	}
	if !st2.CacheHit {
		t.Fatal("identical resubmission was not served from cache")
	}
	cachedBytes, err := c2.Result(ctx, id2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cachedBytes, refBytes) {
		t.Fatal("cached result differs from reference bytes")
	}
	if warm*5 > cold {
		t.Fatalf("cache speedup too small: cold %v, cached %v (want >=5x)", cold, warm)
	}
	t.Logf("cold %v, cached %v (%.0fx)", cold, warm, float64(cold)/float64(warm))
}

// scrapeJSON GETs path from the server and decodes the body into out,
// returning the status code.
func scrapeJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: not JSON: %v\n%s", path, err, body)
		}
	}
	return resp.StatusCode
}

// TestServerE2ETraceHealthLifecycle is the observability acceptance test: a
// campaign submitted under a client-chosen trace ID is SIGKILLed mid-run and
// resumed on a fresh process, and its whole lifecycle — job record, WAL,
// structured logs, and the Chrome trace flushed by the second server — is
// reconstructable from the artifacts, all correlated by that one trace ID.
// The health and telemetry endpoints are scraped along the way.
func TestServerE2ETraceHealthLifecycle(t *testing.T) {
	bin := buildServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	const traceID = "4bf92f3577b34da6a3ce929d0e0e4736"

	stateDir := filepath.Join(t.TempDir(), "state")
	srv := startServer(t, bin, stateDir)

	// Health surface on a live, idle server.
	var hz map[string]string
	if code := scrapeJSON(t, srv.base, "/healthz", &hz); code != http.StatusOK || hz["status"] != "ok" {
		t.Fatalf("/healthz = %d %v", code, hz)
	}
	var rz struct {
		Ready  bool              `json:"ready"`
		Checks map[string]string `json:"checks"`
	}
	if code := scrapeJSON(t, srv.base, "/readyz", &rz); code != http.StatusOK || !rz.Ready {
		t.Fatalf("/readyz = %d %+v", code, rz)
	}
	for _, check := range []string{"wal", "queue", "runner"} {
		if rz.Checks[check] != "ok" {
			t.Fatalf("/readyz check %q = %q, want ok (%+v)", check, rz.Checks[check], rz)
		}
	}
	var bi struct {
		GoVersion string `json:"go_version"`
		Path      string `json:"path"`
	}
	if code := scrapeJSON(t, srv.base, "/buildinfo", &bi); code != http.StatusOK || bi.GoVersion == "" {
		t.Fatalf("/buildinfo = %d %+v", code, bi)
	}

	// Submit under a fixed trace ID and SIGKILL mid-run.
	c := srv.client()
	c.Trace = traceID
	id, err := c.Submit(ctx, e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.TraceID != traceID {
			t.Fatalf("status trace_id = %q, want %q", st.TraceID, traceID)
		}
		if st.State == jobs.StateRunning && st.ShardsDone >= 1 || st.State.Terminal() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.kill()

	// Resume on a fresh process that flushes a Chrome trace on shutdown.
	tracePath := filepath.Join(t.TempDir(), "trace.json")
	srv2 := startServer(t, bin, stateDir, "-trace", tracePath)
	c2 := srv2.client()
	st, err := c2.Wait(ctx, id, 20*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != jobs.StateDone || st.TraceID != traceID {
		t.Fatalf("resumed job = %s trace %q, want done under %q", st.State, st.TraceID, traceID)
	}

	// The timeseries ring has been sampling since boot (1s period): by the
	// time a 600-tuple campaign resumed and finished, at least the field
	// contract must hold; poll briefly for the first sample.
	var tsd struct {
		PeriodMS int64 `json:"period_ms"`
		Capacity int   `json:"capacity"`
		Samples  []struct {
			TMS    int64              `json:"t_ms"`
			Values map[string]float64 `json:"values"`
		} `json:"samples"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := scrapeJSON(t, srv2.base, "/timeseries", &tsd); code != http.StatusOK {
			t.Fatalf("/timeseries = %d", code)
		}
		if len(tsd.Samples) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if tsd.PeriodMS <= 0 || tsd.Capacity <= 0 || len(tsd.Samples) == 0 {
		t.Fatalf("/timeseries dump = %+v", tsd)
	}

	// Graceful exit flushes the trace file.
	if err := srv2.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srv2.done:
		if err != nil {
			t.Fatalf("server exited non-zero on SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on SIGINT")
	}

	// Artifact 1: the WAL's job record carries the trace ID.
	wal, err := os.ReadFile(filepath.Join(stateDir, "wal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	walTrace := ""
	for _, line := range bytes.Split(wal, []byte("\n")) {
		var rec struct {
			T     string `json:"t"`
			ID    string `json:"id"`
			Trace string `json:"trace"`
		}
		if json.Unmarshal(line, &rec) == nil && rec.T == "job" && rec.ID == id {
			walTrace = rec.Trace
		}
	}
	if walTrace != traceID {
		t.Errorf("wal job record trace = %q, want %q", walTrace, traceID)
	}

	// Artifact 2: the flushed Chrome trace stamps the resumed execution's
	// spans with the same ID.
	traceBytes, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ValidateTrace(traceBytes)
	if err != nil {
		t.Fatal(err)
	}
	stamped := 0
	for _, ev := range evs {
		if got, ok := ev.Args["trace_id"].(string); ok {
			if got != traceID {
				t.Fatalf("span %q trace_id = %q, want %q", ev.Name, got, traceID)
			}
			stamped++
		}
	}
	if stamped == 0 {
		t.Error("flushed trace has no trace_id-stamped spans")
	}

	// Artifact 3: both processes' structured logs carry the trace ID, so one
	// grep reconstructs the lifecycle across the kill.
	for i, s := range []*server{srv, srv2} {
		logs := s.stderr.String()
		if !strings.Contains(logs, traceID) {
			t.Errorf("server %d stderr has no %s line:\n%.2000s", i+1, traceID, logs)
		}
	}
	if !strings.Contains(srv2.stderr.String(), "job resumed from wal") {
		t.Errorf("second server logs missing resume line")
	}
	t.Logf("lifecycle for %s reconstructable: WAL + %d spans + logs from both processes under trace %s",
		id, stamped, traceID)
}

// TestServerE2EGracefulSignal checks SIGTERM drains cleanly: the server
// exits zero and leaves a replayable state dir.
func TestServerE2EGracefulSignal(t *testing.T) {
	bin := buildServer(t)
	stateDir := filepath.Join(t.TempDir(), "state")
	srv := startServer(t, bin, stateDir)
	if err := srv.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-srv.done:
		if err != nil {
			t.Fatalf("server exited non-zero on SIGINT: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not exit on SIGINT")
	}
	if _, err := os.Stat(filepath.Join(stateDir, "wal.jsonl")); err != nil {
		t.Fatalf("state dir not initialized: %v", err)
	}
}
