package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: swapcodes
cpu: some CPU
BenchmarkEngineScaling/workers=1-8         	       2	 503123456 ns/op	  12345 tuples/s
BenchmarkEngineScaling/workers=8-8         	      10	 103123456 ns/op	  98765 tuples/s
BenchmarkSMCPIStack-8                      	     100	  11003022 ns/op	  123456 B/op	      42 allocs/op	   88031 cycles
PASS
ok  	swapcodes	3.210s
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := ParseBenchOutput(sampleOutput, ".")
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkEngineScaling/workers=1" {
		t.Errorf("name = %q (GOMAXPROCS suffix must be trimmed)", b.Name)
	}
	if b.Iterations != 2 || b.NsPerOp != 503123456 {
		t.Errorf("iters/ns = %d/%g", b.Iterations, b.NsPerOp)
	}
	if b.Metrics["tuples/s"] != 12345 {
		t.Errorf("custom metric lost: %v", b.Metrics)
	}
	c := benches[2]
	if c.BytesPerOp != 123456 || c.AllocsOp != 42 || c.Metrics["cycles"] != 88031 {
		t.Errorf("alloc/custom fields wrong: %+v", c)
	}
}

func bench(name string, ns float64) Bench { return Bench{Name: name, Pkg: ".", NsPerOp: ns} }

func record(label string, bs ...Bench) *File {
	return &File{SchemaVersion: SchemaVersion, Label: label, Benchmarks: bs}
}

func TestCompareRegressions(t *testing.T) {
	prev := record("PR3", bench("A", 100), bench("B", 200), bench("Gone", 10))
	cur := record("PR4", bench("A", 110), bench("B", 260), bench("New", 5))
	report, regressions := Compare(prev, cur, 15)
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (only B is over 15%%)\n%s", regressions, report)
	}
	for _, want := range []string{"REGRESSED", "new", "gone", "+10.0%", "+30.0%"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// At a looser threshold B passes too.
	if _, n := Compare(prev, cur, 50); n != 0 {
		t.Errorf("regressions at 50%% threshold = %d, want 0", n)
	}
}

func TestRecordRoundTripAndLatestPrior(t *testing.T) {
	dir := t.TempDir()
	for _, r := range []*File{
		record("PR2", bench("A", 100)),
		record("PR10", bench("A", 90)),
		record("PR4", bench("A", 95)),
	} {
		if err := writeFile(filepath.Join(dir, "BENCH_"+r.Label+".json"), r); err != nil {
			t.Fatal(err)
		}
	}
	cur := filepath.Join(dir, "BENCH_PR11.json")
	if err := writeFile(cur, record("PR11", bench("A", 91))); err != nil {
		t.Fatal(err)
	}
	prev, err := latestPrior(dir, cur)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric label order: PR10 beats PR4 and PR2 (lexical order would pick
	// PR4); the record being compared is itself excluded.
	if prev == nil || prev.Label != "PR10" {
		t.Fatalf("latest prior = %+v, want PR10", prev)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_X.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "label": "X"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFile(path); err == nil || !strings.Contains(err.Error(), "schema version") {
		t.Errorf("wrong-schema read err = %v, want schema version error", err)
	}
}

func TestLatestPriorEmpty(t *testing.T) {
	prev, err := latestPrior(t.TempDir(), "BENCH_PR4.json")
	if err != nil || prev != nil {
		t.Errorf("empty dir: prev=%v err=%v, want nil/nil", prev, err)
	}
}

// TestLatestPriorSkipsCorruptRecords: a truncated or foreign-schema record
// in the trajectory must not wedge comparison; older valid records win.
func TestLatestPriorSkipsCorruptRecords(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "BENCH_PR2.json"), record("PR2", bench("A", 100))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR3.json"), nil, 0o644); err != nil {
		t.Fatal(err) // empty file: truncated write
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_PR9.json"), []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err) // future schema
	}
	prev, err := latestPrior(dir, filepath.Join(dir, "BENCH_PR10.json"))
	if err != nil {
		t.Fatal(err)
	}
	if prev == nil || prev.Label != "PR2" {
		t.Fatalf("latest prior = %+v, want the surviving PR2", prev)
	}
}

// TestRunCompareFirstRun: comparing a record that does not exist yet (a
// fresh branch, no -run) is the first-run outcome, not a failure.
func TestRunCompareFirstRun(t *testing.T) {
	dir := t.TempDir()
	if err := runCompare(os.Stdout, filepath.Join(dir, "BENCH_PR1.json"), dir, "", 15, false); err != nil {
		t.Fatalf("missing current record should be a no-op, got %v", err)
	}
}

// TestRunCompareNoPrior: the trajectory's very first record has nothing to
// compare against and must not fail the gate.
func TestRunCompareNoPrior(t *testing.T) {
	dir := t.TempDir()
	cur := filepath.Join(dir, "BENCH_PR1.json")
	if err := writeFile(cur, record("PR1", bench("A", 100))); err != nil {
		t.Fatal(err)
	}
	if err := runCompare(os.Stdout, cur, dir, "", 15, false); err != nil {
		t.Fatalf("no-prior compare should be a no-op, got %v", err)
	}
}

// TestRunCompareGate: with a prior present, regressions over threshold fail
// unless -informational.
func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "BENCH_PR1.json"), record("PR1", bench("A", 100))); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "BENCH_PR2.json")
	if err := writeFile(cur, record("PR2", bench("A", 200))); err != nil {
		t.Fatal(err)
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := runCompare(null, cur, dir, "", 15, false); err == nil || !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("100%% regression err = %v, want gate failure", err)
	}
	if err := runCompare(null, cur, dir, "", 15, true); err != nil {
		t.Fatalf("informational mode must not fail, got %v", err)
	}
}

// TestRunCompareOnly: -only restricts the gate to matching benchmarks — a
// regression outside the filter passes, one inside fails, and a filter
// matching nothing is an error (a typo must not silently disable the gate).
func TestRunCompareOnly(t *testing.T) {
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "BENCH_PR1.json"),
		record("PR1", bench("BenchmarkFast", 100), bench("BenchmarkSlow", 100))); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, "BENCH_PR2.json")
	if err := writeFile(cur,
		record("PR2", bench("BenchmarkFast", 101), bench("BenchmarkSlow", 300))); err != nil {
		t.Fatal(err)
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	if err := runCompare(null, cur, dir, "BenchmarkFast", 5, false); err != nil {
		t.Fatalf("regression outside -only tripped the gate: %v", err)
	}
	if err := runCompare(null, cur, dir, "BenchmarkSlow", 5, false); err == nil ||
		!strings.Contains(err.Error(), "regressed") {
		t.Fatalf("regression inside -only err = %v, want gate failure", err)
	}
	if err := runCompare(null, cur, dir, "BenchmarkNoSuch", 5, false); err == nil ||
		!strings.Contains(err.Error(), "matched no benchmarks") {
		t.Fatalf("empty -only match err = %v, want error", err)
	}
	if err := runCompare(null, cur, dir, "(", 5, false); err == nil {
		t.Fatal("invalid -only regexp accepted")
	}
}
