// Command benchdiff records and compares the repo's benchmark trajectory.
//
// Usage:
//
//	benchdiff -run -label PR4                 # run the tier-1 benchmark set, write BENCH_PR4.json
//	benchdiff -compare BENCH_PR4.json         # compare against the latest prior BENCH_*.json
//	benchdiff -run -label PR4 -compare BENCH_PR4.json -informational
//	benchdiff -compare BENCH_PR9.json -only BenchmarkSMObsDisabled -threshold 5
//
// Each PR records its benchmark numbers in a schema-versioned BENCH_<label>.json
// at the repo root; comparing a new record against the latest prior record
// turns the checked-in files into a performance trajectory: any >threshold
// regression of ns/op fails the gate (or merely warns with -informational,
// the mode CI uses on pull requests, where runner noise exceeds the
// threshold routinely).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SchemaVersion identifies the BENCH_*.json layout; bump on breaking change.
const SchemaVersion = 1

// File is the trajectory record: one benchmark run of the tier-1 set.
type File struct {
	SchemaVersion int     `json:"schema_version"`
	Label         string  `json:"label"`
	GoVersion     string  `json:"go_version"`
	GOOS          string  `json:"goos"`
	GOARCH        string  `json:"goarch"`
	CreatedAt     string  `json:"created_at"`
	Benchmarks    []Bench `json:"benchmarks"`
}

// Bench is one benchmark result (Go's -bench output, parsed).
type Bench struct {
	Name       string             `json:"name"` // trimmed of the -N GOMAXPROCS suffix
	Pkg        string             `json:"pkg"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"` // custom b.ReportMetric units
}

// suite is the tier-1 benchmark set the trajectory tracks: the engine and
// campaign throughput benches at the root, the observability overhead pair,
// the CPI-stack accounting bench, and the job-service telemetry overhead
// pair.
var suite = []struct{ pkg, pattern string }{
	{".", "BenchmarkEngineScaling"},
	{".", "BenchmarkCampaignEvaluator"},
	{"./internal/sm", "BenchmarkSMObsDisabled|BenchmarkSMObsEnabled"},
	{"./internal/sm", "BenchmarkSMProfArmed|BenchmarkSMFlightArmed"},
	{"./internal/sm", "BenchmarkSMCPIStack"},
	{"./internal/sm", "BenchmarkSMMemModelOff|BenchmarkSMMemModelArmed"},
	{"./internal/jobs", "BenchmarkServiceTelemetry"},
}

func main() {
	doRun := flag.Bool("run", false, "run the tier-1 benchmark set and write the record")
	label := flag.String("label", "", "record label; the record is written to <dir>/BENCH_<label>.json")
	dir := flag.String("dir", ".", "directory holding BENCH_*.json records (the repo root)")
	compare := flag.String("compare", "", "compare this record against the latest prior BENCH_*.json in -dir")
	threshold := flag.Float64("threshold", 15, "regression threshold in percent of ns/op")
	only := flag.String("only", "", "restrict -compare to benchmarks matching this regexp")
	informational := flag.Bool("informational", false, "report regressions but exit 0 (PR mode: runner noise)")
	benchtime := flag.String("benchtime", "", "passed to go test -benchtime (default: go's 1s)")
	count := flag.Int("count", 1, "passed to go test -count; >1 keeps the fastest run per benchmark")
	flag.Parse()

	if !*doRun && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: nothing to do (want -run and/or -compare); see -h")
		os.Exit(2)
	}
	if *doRun {
		if *label == "" {
			fail(fmt.Errorf("-run needs -label (the BENCH_<label>.json name)"))
		}
		f, err := runSuite(*label, *benchtime, *count)
		fail(err)
		fail(os.MkdirAll(*dir, 0o755))
		path := filepath.Join(*dir, "BENCH_"+*label+".json")
		fail(writeFile(path, f))
		fmt.Fprintln(os.Stderr, "benchdiff: wrote", path)
		if *compare == "" {
			*compare = path
		}
	}
	if *compare != "" {
		fail(runCompare(os.Stdout, *compare, *dir, *only, *threshold, *informational))
	}
}

// runCompare loads the record at curPath and compares it against the latest
// prior record in dir. Two situations are outcomes rather than errors: a
// missing curPath (first run on a branch with no record yet — there is
// nothing to gate) and an empty dir (this record is the first of the
// trajectory). Both say so on stderr and return nil so CI's first run
// passes.
func runCompare(w *os.File, curPath, dir, only string, threshold float64, informational bool) error {
	cur, err := readFile(curPath)
	if errors.Is(err, os.ErrNotExist) {
		fmt.Fprintf(os.Stderr, "benchdiff: no record %s (first run?); nothing to compare\n", curPath)
		return nil
	}
	if err != nil {
		return err
	}
	prev, err := latestPrior(dir, curPath)
	if err != nil {
		return err
	}
	if prev == nil {
		fmt.Fprintf(os.Stderr, "benchdiff: no prior BENCH_*.json in %s; nothing to compare\n", dir)
		return nil
	}
	if only != "" {
		re, err := regexp.Compile(only)
		if err != nil {
			return fmt.Errorf("-only: %w", err)
		}
		prev, cur = filterBenches(prev, re), filterBenches(cur, re)
		if len(cur.Benchmarks) == 0 {
			return fmt.Errorf("-only %q matched no benchmarks in %s", only, curPath)
		}
	}
	report, regressions := Compare(prev, cur, threshold)
	fmt.Fprint(w, report)
	if regressions > 0 && !informational {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%", regressions, threshold)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) over %.0f%% (informational)\n", regressions, threshold)
	}
	return nil
}

// runSuite executes the tier-1 set via go test -bench and parses the output.
// With -count > 1 the fastest ns/op per benchmark is kept (the usual
// noise-robust choice for a regression gate).
func runSuite(label, benchtime string, count int) (*File, error) {
	f := &File{
		SchemaVersion: SchemaVersion,
		Label:         label,
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CreatedAt:     time.Now().UTC().Format(time.RFC3339),
	}
	best := map[string]Bench{}
	for _, s := range suite {
		args := []string{"test", "-run", "^$", "-bench", s.pattern}
		if benchtime != "" {
			args = append(args, "-benchtime", benchtime)
		}
		if count > 1 {
			args = append(args, "-count", strconv.Itoa(count))
		}
		args = append(args, s.pkg)
		cmd := exec.Command("go", args...)
		var out bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "benchdiff: go %s\n", strings.Join(args, " "))
		if err := cmd.Run(); err != nil {
			return nil, fmt.Errorf("go test -bench %s %s: %w", s.pattern, s.pkg, err)
		}
		benches, err := ParseBenchOutput(out.String(), s.pkg)
		if err != nil {
			return nil, err
		}
		if len(benches) == 0 {
			return nil, fmt.Errorf("pattern %q matched no benchmarks in %s", s.pattern, s.pkg)
		}
		for _, b := range benches {
			if old, ok := best[b.Pkg+"/"+b.Name]; !ok || b.NsPerOp < old.NsPerOp {
				best[b.Pkg+"/"+b.Name] = b
			}
		}
	}
	for _, b := range best {
		f.Benchmarks = append(f.Benchmarks, b)
	}
	sort.Slice(f.Benchmarks, func(i, j int) bool {
		if f.Benchmarks[i].Pkg != f.Benchmarks[j].Pkg {
			return f.Benchmarks[i].Pkg < f.Benchmarks[j].Pkg
		}
		return f.Benchmarks[i].Name < f.Benchmarks[j].Name
	})
	return f, nil
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// ParseBenchOutput parses go test -bench text into Bench records. Each
// result line reads "BenchmarkName-N  iters  v unit  v unit ..."; ns/op,
// B/op, and allocs/op map onto struct fields, any other unit (custom
// b.ReportMetric) lands in Metrics.
func ParseBenchOutput(out, pkg string) ([]Bench, error) {
	var benches []Bench
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		// Trim the GOMAXPROCS suffix (-8) so records taken on machines with
		// different core counts compare by name.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad iteration count in %q", sc.Text())
		}
		b := Bench{Name: name, Pkg: pkg, Iterations: iters}
		fields := strings.Fields(m[3])
		if len(fields)%2 != 0 {
			return nil, fmt.Errorf("odd value/unit fields in %q", sc.Text())
		}
		for i := 0; i < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q in %q", fields[i], sc.Text())
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = map[string]float64{}
				}
				b.Metrics[unit] = v
			}
		}
		benches = append(benches, b)
	}
	return benches, sc.Err()
}

// filterBenches returns a shallow copy of f holding only the benchmarks
// whose name matches re. Records on disk stay complete; the filter exists
// so a targeted gate (-only 'BenchmarkSMObsDisabled' -threshold 5) can
// enforce a tighter budget on one benchmark than the suite-wide noise
// threshold allows.
func filterBenches(f *File, re *regexp.Regexp) *File {
	out := *f
	out.Benchmarks = nil
	for _, b := range f.Benchmarks {
		if re.MatchString(b.Name) {
			out.Benchmarks = append(out.Benchmarks, b)
		}
	}
	return &out
}

// Compare renders a prior-vs-current table and counts ns/op regressions
// beyond threshold percent. Benchmarks present on only one side are
// reported but never count as regressions.
func Compare(prev, cur *File, threshold float64) (string, int) {
	var b strings.Builder
	fmt.Fprintf(&b, "benchdiff: %s -> %s (threshold %.0f%%)\n", prev.Label, cur.Label, threshold)
	fmt.Fprintf(&b, "%-44s %14s %14s %8s\n", "benchmark", prev.Label+" ns/op", cur.Label+" ns/op", "delta")
	prevBy := map[string]Bench{}
	for _, p := range prev.Benchmarks {
		prevBy[p.Pkg+"/"+p.Name] = p
	}
	regressions := 0
	seen := map[string]bool{}
	for _, c := range cur.Benchmarks {
		key := c.Pkg + "/" + c.Name
		seen[key] = true
		p, ok := prevBy[key]
		if !ok {
			fmt.Fprintf(&b, "%-44s %14s %14.0f %8s\n", c.Name, "-", c.NsPerOp, "new")
			continue
		}
		delta := 0.0
		if p.NsPerOp > 0 {
			delta = 100 * (c.NsPerOp - p.NsPerOp) / p.NsPerOp
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSED"
			regressions++
		}
		fmt.Fprintf(&b, "%-44s %14.0f %14.0f %+7.1f%%%s\n", c.Name, p.NsPerOp, c.NsPerOp, delta, mark)
	}
	for _, p := range prev.Benchmarks {
		if !seen[p.Pkg+"/"+p.Name] {
			fmt.Fprintf(&b, "%-44s %14.0f %14s %8s\n", p.Name, p.NsPerOp, "-", "gone")
		}
	}
	return b.String(), regressions
}

// latestPrior finds the most recent BENCH_*.json in dir other than cur.
// "Latest" orders by the trailing integer of the label when both have one
// (PR10 after PR9), then by label string.
func latestPrior(dir, cur string) (*File, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	curAbs, _ := filepath.Abs(cur)
	var files []*File
	for _, p := range paths {
		if abs, _ := filepath.Abs(p); abs == curAbs {
			continue
		}
		f, err := readFile(p)
		if err != nil {
			// A truncated, empty, or foreign-schema record must not wedge
			// every future comparison; warn and fall back to older records.
			fmt.Fprintf(os.Stderr, "benchdiff: skipping unreadable prior %s: %v\n", p, err)
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	sort.Slice(files, func(i, j int) bool {
		a, b := labelOrd(files[i].Label), labelOrd(files[j].Label)
		if a != b {
			return a < b
		}
		return files[i].Label < files[j].Label
	})
	return files[len(files)-1], nil
}

var trailingInt = regexp.MustCompile(`(\d+)$`)

func labelOrd(label string) int {
	if m := trailingInt.FindString(label); m != "" {
		n, _ := strconv.Atoi(m)
		return n
	}
	return -1
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema version %d, this benchdiff reads %d", path, f.SchemaVersion, SchemaVersion)
	}
	return &f, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
